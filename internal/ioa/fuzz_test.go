package ioa_test

// Native fuzz targets for the Chapter 2 algebra. Each fuzz input is a
// seed plus shape bytes from which small random automata are derived
// deterministically, so every corpus entry is a reproducible law
// check: composition laws (compatibility, commutativity and
// associativity of ·, Corollary 3 on enabled sets) and the
// hide/rename laws (signature duality, schedule invariance, behavior
// renaming). `go test -fuzz=FuzzComposeLaws` (or FuzzHideRename)
// explores beyond the seed corpus under testdata/fuzz/.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
)

// fuzzDepth bounds the schedule enumerations; small keeps each fuzz
// iteration fast while still exercising interleavings.
const fuzzDepth = 3

// fuzzAutomaton derives a table automaton from the rng, like
// randAutomaton but with the state count driven by a shape byte.
func fuzzAutomaton(rng *rand.Rand, shape uint8, name string, in, out, internal []ioa.Action) *ioa.Table {
	sig := ioa.MustSignature(in, out, internal)
	nStates := 2 + int(shape)%3
	states := make([]ioa.State, nStates)
	for i := range states {
		states[i] = ioa.KeyState(fmt.Sprintf("%s%d", name, i))
	}
	var steps []ioa.Step
	all := append(append(append([]ioa.Action(nil), in...), out...), internal...)
	for _, act := range all {
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			steps = append(steps, ioa.Step{
				From: states[rng.Intn(nStates)],
				Act:  act,
				To:   states[rng.Intn(nStates)],
			})
		}
	}
	var classes []ioa.Class
	for _, act := range append(append([]ioa.Action(nil), out...), internal...) {
		classes = append(classes, ioa.Class{Name: name + "-" + string(act), Actions: ioa.NewSet(act)})
	}
	return ioa.MustTable(name, sig, states[:1], steps, classes)
}

func fuzzSchedules(t *testing.T, a ioa.Automaton) *ioa.SchedModule {
	t.Helper()
	m, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), a, fuzzDepth)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// FuzzComposeLaws checks the composition algebra on derived automata:
//
//   - A·B is defined exactly when the signatures are compatible, and
//     sharing an output makes them incompatible;
//   - commutativity: Scheds(A·B) = Scheds(B·A);
//   - associativity: Scheds((A·B)·C) = Scheds(A·(B·C)), with equal
//     signatures;
//   - Corollary 3: a locally-controlled action is enabled in the
//     composition iff Next is nonempty, at every bounded-reachable
//     state.
func FuzzComposeLaws(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), uint8(2))
	f.Add(int64(42), uint8(3), uint8(1), uint8(4))
	f.Add(int64(-7), uint8(255), uint8(128), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, s1, s2, s3 uint8) {
		rng := rand.New(rand.NewSource(seed))
		// A emits x (input y), B emits y (input x), C emits z and
		// listens to x: a cyclic interaction plus an observer.
		a := fuzzAutomaton(rng, s1, "A", []ioa.Action{"y"}, []ioa.Action{"x"}, []ioa.Action{"ha"})
		b := fuzzAutomaton(rng, s2, "B", []ioa.Action{"x"}, []ioa.Action{"y"}, nil)
		c := fuzzAutomaton(rng, s3, "C", []ioa.Action{"x"}, []ioa.Action{"z"}, nil)

		// Output-sharing must be rejected.
		clash := fuzzAutomaton(rng, s1, "Clash", nil, []ioa.Action{"x"}, nil)
		if _, err := ioa.Compose("bad", a, clash); err == nil {
			t.Fatal("composition with shared output x accepted")
		}
		// Internal-action capture must be rejected too: ha is internal
		// to A, so another automaton with ha in its signature is
		// incompatible.
		snoop := fuzzAutomaton(rng, s2, "Snoop", []ioa.Action{"ha"}, nil, nil)
		if _, err := ioa.Compose("bad2", a, snoop); err == nil {
			t.Fatal("composition capturing internal ha accepted")
		}

		ab, err := ioa.Compose("AB", a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := ioa.Compose("BA", b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Sig().Equal(ba.Sig()) {
			t.Fatal("commutativity: signatures differ")
		}
		if !fuzzSchedules(t, ab).Equal(fuzzSchedules(t, ba)) {
			t.Fatal("commutativity: schedule sets differ")
		}

		abc1, err := ioa.Compose("AB_C", ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := ioa.Compose("BC", b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := ioa.Compose("A_BC", a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !abc1.Sig().Equal(abc2.Sig()) {
			t.Fatal("associativity: signatures differ")
		}
		if !fuzzSchedules(t, abc1).Equal(fuzzSchedules(t, abc2)) {
			t.Fatal("associativity: schedule sets differ")
		}

		// Corollary 3 on the pairwise composition: enabled iff a step
		// exists, state by state.
		states, err := explore.New(explore.Options{Workers: 1, Limit: 512}).Reach(context.Background(), ab)
		if err != nil {
			t.Fatal(err)
		}
		local := ab.Sig().Local()
		for _, s := range states {
			enabled := ioa.NewSet(ab.Enabled(s)...)
			for act := range local {
				hasStep := len(ab.Next(s, act)) > 0
				if enabled.Has(act) != hasStep {
					t.Fatalf("Corollary 3: state %q action %q: enabled=%t, step=%t",
						s.Key(), act, enabled.Has(act), hasStep)
				}
			}
		}
	})
}

// FuzzHideRename checks the hiding and renaming laws:
//
//   - hide/external duality: hiding Σ moves it from outputs to
//     internals and removes it from the external signature;
//   - schedules are invariant under hiding (only the signature
//     changes) and behaviors are the projections;
//   - an injective renaming maps schedules elementwise and composes
//     with its inverse to the identity.
func FuzzHideRename(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(9), uint8(7))
	f.Add(int64(-3), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		rng := rand.New(rand.NewSource(seed))
		a := fuzzAutomaton(rng, shape, "A", []ioa.Action{"i"}, []ioa.Action{"x", "z"}, []ioa.Action{"h"})

		// Hide z.
		hidden := ioa.Hide(a, ioa.NewSet("z"))
		sig, hsig := a.Sig(), hidden.Sig()
		if hsig.IsOutput("z") || !hsig.IsInternal("z") {
			t.Fatal("hide duality: z not moved to internal")
		}
		if !hsig.External().Equal(ioa.MustSignature([]ioa.Action{"i"}, []ioa.Action{"x"}, nil).External()) {
			t.Fatalf("hide duality: external signature %v", hsig.External())
		}
		if hsig.Acts().Len() != sig.Acts().Len() || hsig.Acts().Minus(sig.Acts()).Len() != 0 {
			t.Fatal("hide changed the action set")
		}
		sa, sh := fuzzSchedules(t, a), fuzzSchedules(t, hidden)
		if sa.Len() != sh.Len() {
			t.Fatalf("hide changed schedule count: %d vs %d", sa.Len(), sh.Len())
		}
		for _, tr := range sa.Traces() {
			if !sh.Has(tr) {
				t.Fatalf("schedule %v lost by hiding", ioa.TraceString(tr))
			}
		}
		ba, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), a, fuzzDepth)
		if err != nil {
			t.Fatal(err)
		}
		bh, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), hidden, fuzzDepth)
		if err != nil {
			t.Fatal(err)
		}
		keep := hidden.Sig().Ext()
		for _, tr := range ba.Traces() {
			if !bh.Has(keep.Project(tr)) {
				t.Fatalf("projected behavior %v missing after hide", ioa.TraceString(keep.Project(tr)))
			}
		}

		// Rename by a bijection and back.
		fwd := ioa.MustMapping(map[ioa.Action]ioa.Action{"x": "X", "i": "I", "h": "H"})
		bwd := ioa.MustMapping(map[ioa.Action]ioa.Action{"X": "x", "I": "i", "H": "h"})
		ra, err := ioa.Rename(a, fwd)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Sig().IsOutput("X") || !ra.Sig().IsInput("I") || !ra.Sig().IsInternal("H") {
			t.Fatalf("rename moved action kinds: %v", ra.Sig())
		}
		sr := fuzzSchedules(t, ra)
		if sr.Len() != sa.Len() {
			t.Fatalf("rename changed schedule count: %d vs %d", sr.Len(), sa.Len())
		}
		for _, tr := range sa.Traces() {
			if !sr.Has(fwd.ApplySeq(tr)) {
				t.Fatalf("renamed schedule %v missing", ioa.TraceString(fwd.ApplySeq(tr)))
			}
		}
		back, err := ioa.Rename(ra, bwd)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Sig().Equal(a.Sig()) {
			t.Fatal("rename∘rename⁻¹ changed the signature")
		}
		if !fuzzSchedules(t, back).Equal(sa) {
			t.Fatal("rename∘rename⁻¹ changed the schedules")
		}
	})
}
