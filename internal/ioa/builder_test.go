package ioa

import (
	"reflect"
	"strconv"
	"testing"
)

// counter is a tiny test automaton state.
type counter int

func (c counter) Key() string { return strconv.Itoa(int(c)) }

// buildCounter defines an automaton with input "inc", output "emit"
// (enabled when the count is positive, decrementing), and internal
// "noop" (never enabled past zero).
func buildCounter(t *testing.T) *Prog {
	t.Helper()
	d := NewDef("counter")
	d.Start(counter(0))
	d.Input("inc", func(s State) State { return s.(counter) + 1 })
	d.Output("emit", "main",
		func(s State) bool { return s.(counter) > 0 },
		func(s State) State { return s.(counter) - 1 })
	d.Internal("noop", "main",
		func(s State) bool { return false },
		func(s State) State { return s })
	p, err := d.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderSignatureAndPartition(t *testing.T) {
	p := buildCounter(t)
	if !p.Sig().IsInput("inc") || !p.Sig().IsOutput("emit") || !p.Sig().IsInternal("noop") {
		t.Fatalf("signature wrong: %v", p.Sig())
	}
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Parts()) != 1 || p.Parts()[0].Actions.Len() != 2 {
		t.Fatalf("partition wrong: %+v", p.Parts())
	}
}

func TestBuilderTransitions(t *testing.T) {
	p := buildCounter(t)
	s0 := p.Start()[0]
	s1 := p.Next(s0, "inc")
	if len(s1) != 1 || s1[0].Key() != "1" {
		t.Fatalf("inc from 0: %v", s1)
	}
	if got := p.Next(s0, "emit"); got != nil {
		t.Fatalf("emit enabled from 0: %v", got)
	}
	if got := p.Next(s1[0], "emit"); len(got) != 1 || got[0].Key() != "0" {
		t.Fatalf("emit from 1: %v", got)
	}
	if got := p.Next(s0, "bogus"); got != nil {
		t.Fatalf("unknown action produced steps: %v", got)
	}
}

func TestBuilderEnabled(t *testing.T) {
	p := buildCounter(t)
	if got := p.Enabled(counter(0)); got != nil {
		t.Fatalf("Enabled(0) = %v, want none", got)
	}
	if got := p.Enabled(counter(2)); !reflect.DeepEqual(got, []Action{"emit"}) {
		t.Fatalf("Enabled(2) = %v", got)
	}
}

func TestBuilderDuplicateAction(t *testing.T) {
	d := NewDef("dup")
	d.Start(counter(0))
	d.Input("x", func(s State) State { return s })
	d.Input("x", func(s State) State { return s })
	if _, err := d.Build(); err == nil {
		t.Error("want duplicate-action error")
	}
}

func TestBuilderNoStart(t *testing.T) {
	d := NewDef("nostart")
	d.Input("x", func(s State) State { return s })
	if _, err := d.Build(); err == nil {
		t.Error("want no-start-states error")
	}
}

func TestBuilderDoubleBuild(t *testing.T) {
	d := NewDef("twice")
	d.Start(counter(0))
	if _, err := d.Build(); err != nil {
		t.Fatalf("first Build: %v", err)
	}
	if _, err := d.Build(); err == nil {
		t.Error("second Build must fail")
	}
}

func TestInputSelfLoopDefault(t *testing.T) {
	// InputND returning nothing must behave as a self-loop.
	d := NewDef("selfloop")
	d.Start(counter(0))
	d.InputND("in", func(State) []State { return nil })
	p, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Next(counter(5), "in")
	if len(got) != 1 || got[0].Key() != "5" {
		t.Fatalf("input without effect must self-loop, got %v", got)
	}
	if err := CheckInputEnabled(p, []State{counter(0), counter(9)}); err != nil {
		t.Fatalf("input-enabledness: %v", err)
	}
}

func TestRelabelRefinesPartition(t *testing.T) {
	p := buildCounter(t)
	r := p.Relabel(func(a Action) string { return "cls-" + string(a) })
	if len(r.Parts()) != 2 {
		t.Fatalf("Relabel produced %d classes, want 2", len(r.Parts()))
	}
	if err := CheckPartition(r); err != nil {
		t.Fatalf("relabeled partition invalid: %v", err)
	}
	// The original automaton must be untouched.
	if len(p.Parts()) != 1 {
		t.Error("Relabel mutated the original partition")
	}
	// Transitions are shared and unchanged.
	if got := r.Next(counter(1), "emit"); len(got) != 1 || got[0].Key() != "0" {
		t.Fatalf("relabeled transitions changed: %v", got)
	}
}

func TestOutputNDMultipleSuccessors(t *testing.T) {
	d := NewDef("nd")
	d.Start(counter(0))
	d.OutputND("fork", "main", func(s State) []State {
		return []State{s.(counter) + 1, s.(counter) + 2}
	})
	p, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Next(counter(0), "fork")
	if len(got) != 2 {
		t.Fatalf("want 2 successors, got %v", got)
	}
	if s, ok := StepTo(p, counter(0), "fork", 1); !ok || s.Key() != "2" {
		t.Errorf("StepTo pick=1 = %v", s)
	}
	if s, ok := StepTo(p, counter(0), "fork", 5); !ok || s.Key() != "2" {
		t.Errorf("StepTo pick wraps modulo successors, got %v", s)
	}
}

func TestIsDeterministicAndPrimitive(t *testing.T) {
	p := buildCounter(t)
	states := []State{counter(0), counter(1), counter(2)}
	if !IsDeterministic(p, states) {
		t.Error("counter should be deterministic")
	}
	if !IsPrimitive(p) {
		t.Error("counter should be primitive")
	}
	d := NewDef("nd2")
	d.Start(counter(0))
	d.OutputND("fork", "m", func(s State) []State {
		return []State{s.(counter) + 1, s.(counter) + 2}
	})
	nd := d.MustBuild()
	if IsDeterministic(nd, []State{counter(0)}) {
		t.Error("fork automaton should be nondeterministic")
	}
}

func TestTableAutomaton(t *testing.T) {
	sig := MustSignature([]Action{"in"}, []Action{"out"}, nil)
	tab, err := NewTable("tab", sig,
		[]State{KeyState("s")},
		[]Step{
			{From: KeyState("s"), Act: "out", To: KeyState("t")},
			{From: KeyState("t"), Act: "in", To: KeyState("s")},
		},
		[]Class{{Name: "c", Actions: NewSet("out")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tab); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Input completion: "in" self-loops at s (not declared there).
	if got := tab.Next(KeyState("s"), "in"); len(got) != 1 || got[0].Key() != "s" {
		t.Fatalf("input completion failed: %v", got)
	}
	if got := tab.Enabled(KeyState("t")); len(got) != 0 {
		t.Fatalf("out enabled from t: %v", got)
	}
	if n := len(tab.States()); n != 2 {
		t.Fatalf("States() = %d, want 2", n)
	}
	if n := len(tab.Steps()); n != 3 { // out, declared in, completed in
		t.Fatalf("Steps() = %d, want 3", n)
	}
}

func TestTableRejectsUnknownAction(t *testing.T) {
	sig := MustSignature(nil, []Action{"out"}, nil)
	_, err := NewTable("bad", sig,
		[]State{KeyState("s")},
		[]Step{{From: KeyState("s"), Act: "mystery", To: KeyState("s")}},
		[]Class{{Name: "c", Actions: NewSet("out")}},
	)
	if err == nil {
		t.Error("want error for step outside the signature")
	}
}

func TestCheckPartitionErrors(t *testing.T) {
	sig := MustSignature(nil, []Action{"o1", "o2"}, nil)
	// Missing action o2.
	_, err := NewTable("gap", sig, []State{KeyState("s")},
		[]Step{{From: KeyState("s"), Act: "o1", To: KeyState("s")}},
		[]Class{{Name: "c", Actions: NewSet("o1")}},
	)
	if err == nil {
		t.Error("want error for partition not covering o2")
	}
	// Overlapping classes.
	_, err = NewTable("overlap", sig, []State{KeyState("s")},
		nil,
		[]Class{
			{Name: "c1", Actions: NewSet("o1", "o2")},
			{Name: "c2", Actions: NewSet("o2")},
		},
	)
	if err == nil {
		t.Error("want error for overlapping classes")
	}
}
