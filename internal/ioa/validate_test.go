package ioa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/testseed"
)

func TestValidateCatchesMissingStart(t *testing.T) {
	// A hand-built automaton with no start states.
	bad := &Table{
		name:  "bad",
		sig:   MustSignature(nil, []Action{"x"}, nil),
		steps: map[string]map[Action][]State{},
		parts: []Class{{Name: "c", Actions: NewSet("x")}},
		local: []Action{"x"},
	}
	if err := Validate(bad); err == nil {
		t.Error("empty start set must fail validation")
	}
}

func TestCheckInputEnabledFailure(t *testing.T) {
	// A custom automaton that claims input "in" but refuses it.
	a := brokenInput{}
	if err := CheckInputEnabled(a, a.Start()); err == nil {
		t.Error("missing input transition must be caught")
	}
	if err := Validate(a); err == nil {
		t.Error("Validate must catch the broken input")
	}
}

// brokenInput declares an input it never enables.
type brokenInput struct{}

func (brokenInput) Name() string               { return "broken" }
func (brokenInput) Sig() Signature             { return MustSignature([]Action{"in"}, nil, nil) }
func (brokenInput) Start() []State             { return []State{KeyState("s")} }
func (brokenInput) Next(State, Action) []State { return nil }
func (brokenInput) Enabled(State) []Action     { return nil }
func (brokenInput) Parts() []Class             { return nil }

func TestSetFilter(t *testing.T) {
	s := NewSet("ab", "cd", "ae")
	got := s.Filter(func(a Action) bool { return strings.HasPrefix(string(a), "a") })
	if got.Len() != 2 || !got.Has("ab") || !got.Has("ae") {
		t.Errorf("Filter = %v", got)
	}
}

func TestSignatureStringStable(t *testing.T) {
	s := MustSignature([]Action{"b", "a"}, []Action{"c"}, nil)
	want := "(in={a, b}, out={c}, int={})"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMustPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	assertPanics("MustSignature", func() {
		MustSignature([]Action{"x"}, []Action{"x"}, nil)
	})
	assertPanics("MustMapping", func() {
		MustMapping(map[Action]Action{"a": "z", "b": "z"})
	})
	assertPanics("MustCompose", func() {
		sig := MustSignature(nil, []Action{"x"}, nil)
		a := MustTable("P", sig, []State{KeyState("0")}, nil,
			[]Class{{Name: "c", Actions: NewSet("x")}})
		b := MustTable("Q", sig, []State{KeyState("0")}, nil,
			[]Class{{Name: "c", Actions: NewSet("x")}})
		MustCompose("bad", a, b)
	})
}

// Property: TupleState keys are injective over component key tuples.
func TestTupleStateKeyInjective(t *testing.T) {
	f := func(a1, b1, a2, b2 string) bool {
		s1 := NewTupleState([]State{KeyState(a1), KeyState(b1)})
		s2 := NewTupleState([]State{KeyState(a2), KeyState(b2)})
		equal := a1 == a2 && b1 == b2
		return (s1.Key() == s2.Key()) == equal
	}
	if err := quick.Check(f, testseed.Quick(t, 0)); err != nil {
		t.Error(err)
	}
}

func TestStepToDisabled(t *testing.T) {
	p := buildCounter(t)
	if _, ok := StepTo(p, counter(0), "emit", 0); ok {
		t.Error("StepTo must report disabled actions")
	}
	if s, ok := StepTo(p, counter(1), "emit", -3); !ok || s.Key() != "0" {
		t.Error("negative pick must be normalized")
	}
}

func TestClassClone(t *testing.T) {
	c := Class{Name: "c", Actions: NewSet("x")}
	d := c.Clone()
	d.Actions.Add("y")
	if c.Actions.Has("y") {
		t.Error("Clone must not share the action set")
	}
}
