package ioa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A State is an automaton state. Implementations must be immutable
// once created; two states are considered equal iff their Keys are
// equal, so Key must be a canonical encoding of the state's content.
type State interface {
	// Key returns a canonical encoding of the state. It is used for
	// equality, hashing, and diagnostics.
	Key() string
}

// KeyState is a trivial State implementation whose identity is a
// string. Useful for small hand-built automata.
type KeyState string

// Key implements State.
func (s KeyState) Key() string { return string(s) }

var _ State = KeyState("")

// JoinKeys combines component state keys into a single unambiguous
// composite key (each component is length-prefixed, so no separator
// collision is possible).
func JoinKeys(keys ...string) string {
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// A Class is one equivalence class of part(A), the partition of an
// automaton's locally-controlled actions. Intuitively a class holds
// the locally-controlled actions of one system component (§2.1, §2.2).
type Class struct {
	// Name identifies the class, e.g. "arbiter/a1".
	Name string
	// Actions is the set of locally-controlled actions in the class.
	Actions Set
}

// Clone returns a deep copy of the class.
func (c Class) Clone() Class {
	return Class{Name: c.Name, Actions: c.Actions.Clone()}
}

// An Automaton is an input-output automaton (§2.1): a set of states
// with distinguished start states, an action signature, a transition
// relation in which every input action is enabled from every state,
// and a partition of the locally-controlled actions into fairness
// classes.
//
// The state set may be infinite; it is represented implicitly by the
// Next function. Implementations must be deterministic functions of
// their arguments (the nondeterminism of the model lives in Next
// returning multiple successor states, never in randomness).
type Automaton interface {
	// Name identifies the automaton in diagnostics.
	Name() string

	// Sig returns the action signature sig(A).
	Sig() Signature

	// Start returns the start states start(A); it must be non-empty.
	Start() []State

	// Next returns all states s' with (s, a, s') ∈ steps(A). For an
	// input action a the result must be non-empty from every state
	// (input-enabledness). For actions outside acts(A) it returns nil.
	Next(s State, a Action) []State

	// Enabled returns the locally-controlled actions enabled from s,
	// i.e. those π ∈ local(sig(A)) with Next(s, π) non-empty. Input
	// actions are never reported (they are enabled by definition).
	Enabled(s State) []Action

	// Parts returns part(A): the partition of local(sig(A)) into
	// classes. The returned slice must not be mutated by callers.
	Parts() []Class
}

// StepTo picks a single successor of s via a, or reports false if a is
// not enabled. When the transition is nondeterministic the choice is
// made by pick (an index into the successor list, reduced modulo its
// length); pass 0 for deterministic automata.
func StepTo(a Automaton, s State, act Action, pick int) (State, bool) {
	next := a.Next(s, act)
	if len(next) == 0 {
		return nil, false
	}
	if pick < 0 {
		pick = -pick
	}
	return next[pick%len(next)], true
}

// EnabledClasses returns the indices of classes of part(A) that have
// at least one action enabled from s.
func EnabledClasses(a Automaton, s State) []int {
	enabled := NewSet(a.Enabled(s)...)
	var idx []int
	for i, c := range a.Parts() {
		for act := range c.Actions {
			if enabled.Has(act) {
				idx = append(idx, i)
				break
			}
		}
	}
	return idx
}

// ClassEnabled reports whether some action of class c is enabled from s.
func ClassEnabled(a Automaton, s State, c Class) bool {
	for _, act := range a.Enabled(s) {
		if c.Actions.Has(act) {
			return true
		}
	}
	return false
}

// EnabledIn returns the enabled locally-controlled actions of s that
// belong to class c, in sorted order.
func EnabledIn(a Automaton, s State, c Class) []Action {
	var out []Action
	for _, act := range a.Enabled(s) {
		if c.Actions.Has(act) {
			out = append(out, act)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckPartition validates that parts(A) is a partition of
// local(sig(A)): classes pairwise disjoint and their union equal to
// the locally-controlled actions.
func CheckPartition(a Automaton) error {
	local := a.Sig().Local()
	seen := make(Set)
	for _, c := range a.Parts() {
		// Sorted so a violation is reported deterministically when a
		// class has several offending actions.
		for _, act := range c.Actions.Sorted() {
			if !local.Has(act) {
				return fmt.Errorf("ioa: class %q contains non-local action %q of %s", c.Name, act, a.Name())
			}
			if seen.Has(act) {
				return fmt.Errorf("ioa: action %q appears in two classes of %s", act, a.Name())
			}
			seen.Add(act)
		}
	}
	if len(seen) != len(local) {
		missing := local.Minus(seen)
		return fmt.Errorf("ioa: local actions %v of %s not covered by any class", missing, a.Name())
	}
	return nil
}

// CheckInputEnabled verifies input-enabledness on the given states:
// every input action must have at least one transition from each.
// (For finite automata pass the full reachable state set; for infinite
// ones pass a sample.)
func CheckInputEnabled(a Automaton, states []State) error {
	inputs := a.Sig().Inputs().Sorted()
	for _, s := range states {
		for _, in := range inputs {
			if len(a.Next(s, in)) == 0 {
				return fmt.Errorf("ioa: automaton %s: input %q not enabled from state %q",
					a.Name(), in, s.Key())
			}
		}
	}
	return nil
}

// Validate runs the structural checks that every automaton must
// satisfy: a valid signature partition, non-empty start set, a valid
// action partition, and input-enabledness on the start states.
func Validate(a Automaton) error {
	if err := a.Sig().validate(); err != nil {
		return fmt.Errorf("ioa: automaton %s: %w", a.Name(), err)
	}
	if len(a.Start()) == 0 {
		return fmt.Errorf("ioa: automaton %s has no start states", a.Name())
	}
	if err := CheckPartition(a); err != nil {
		return err
	}
	return CheckInputEnabled(a, a.Start())
}

// IsDeterministic reports whether the automaton is deterministic in
// the sense of §2.2.3 — one start state and at most one π-step from
// every state — over the supplied states (for finite automata, the
// reachable set).
func IsDeterministic(a Automaton, states []State) bool {
	if len(a.Start()) != 1 {
		return false
	}
	acts := a.Sig().Acts().Sorted()
	for _, s := range states {
		for _, act := range acts {
			if len(a.Next(s, act)) > 1 {
				return false
			}
		}
	}
	return true
}

// IsPrimitive reports whether part(A) consists of a single class
// (§2.2.3: the automaton models an "atomic" system component).
func IsPrimitive(a Automaton) bool { return len(a.Parts()) == 1 }
