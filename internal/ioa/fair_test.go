package ioa

import (
	"testing"
)

// fig22 rebuilds the Figure 2.2 system inline (see package figures for
// the shared constructors; ioa's own tests stay dependency-free).
func fig22(t *testing.T) (*Composite, Automaton) {
	t.Helper()
	sigA := MustSignature([]Action{"α"}, []Action{"β"}, nil)
	a := MustTable("A", sigA,
		[]State{KeyState("p0")},
		[]Step{
			{From: KeyState("p0"), Act: "α", To: KeyState("p1")},
			{From: KeyState("p1"), Act: "α", To: KeyState("p0")},
			{From: KeyState("p1"), Act: "β", To: KeyState("p1")},
		},
		[]Class{{Name: "A", Actions: NewSet("β")}},
	)
	sigB := MustSignature([]Action{"α"}, []Action{"γ"}, nil)
	b := MustTable("B", sigB,
		[]State{KeyState("q0")},
		[]Step{
			{From: KeyState("q0"), Act: "α", To: KeyState("q1")},
			{From: KeyState("q1"), Act: "α", To: KeyState("q0")},
			{From: KeyState("q0"), Act: "γ", To: KeyState("q0")},
		},
		[]Class{{Name: "B", Actions: NewSet("γ")}},
	)
	c := MustCompose("F22", a, b)
	merged := &overrideParts{Automaton: c, parts: []Class{{Name: "m", Actions: NewSet("β", "γ")}}}
	return c, merged
}

type overrideParts struct {
	Automaton
	parts []Class
}

func (o *overrideParts) Parts() []Class { return o.parts }

// driveAlpha runs k α-steps of the Figure 2.2 system.
func driveAlpha(t *testing.T, a Automaton, k int) *Execution {
	t.Helper()
	x := NewExecution(a, a.Start()[0])
	for i := 0; i < k; i++ {
		if err := x.Extend("α", 0); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

// TestFigure22PartitionMatters reproduces the argument of Figure 2.2:
// the all-α execution keeps each component's class disabled at
// alternating states, so with the per-component partition the
// execution incurs bounded fairness debt; with the merged partition
// some locally-controlled action is enabled at every state and the
// debt grows without bound — the execution cannot be fair.
func TestFigure22PartitionMatters(t *testing.T) {
	split, merged := fig22(t)

	// With per-component classes, each class is disabled at every
	// other state, so the fairness-window check passes with window 2.
	xs := driveAlpha(t, split, 20)
	if err := CheckFairWindow(xs, 2); err != nil {
		t.Errorf("split partition: all-α run should be fair-sustainable: %v", err)
	}

	// With the merged class, the window check must fail: the merged
	// class is enabled at every state and never fires.
	xm := driveAlpha(t, merged, 20)
	if err := CheckFairWindow(xm, 2); err == nil {
		t.Error("merged partition: all-α run must violate the fairness window")
	}
	debt := FairDebt(xm)
	if len(debt) != 1 || debt[0] < 19 {
		t.Errorf("merged class debt = %v, want ≈ run length", debt)
	}
}

func TestIsFairFinite(t *testing.T) {
	// A one-shot automaton: out fires once, then nothing is enabled.
	sig := MustSignature(nil, []Action{"out"}, nil)
	a := MustTable("once", sig,
		[]State{KeyState("0")},
		[]Step{{From: KeyState("0"), Act: "out", To: KeyState("1")}},
		[]Class{{Name: "c", Actions: NewSet("out")}},
	)
	x := NewExecution(a, a.Start()[0])
	if IsFairFinite(x) {
		t.Error("initial state enables out; the empty execution is not fair")
	}
	if err := x.Extend("out", 0); err != nil {
		t.Fatal(err)
	}
	if !IsFairFinite(x) {
		t.Error("after out, nothing is enabled; execution is fair")
	}
}

// TestLemma18Extend: any finite execution extends to a fair one using
// the round-robin construction of Lemma 18's proof.
func TestLemma18Extend(t *testing.T) {
	// Automaton with two classes: "work" (fires 3 times then
	// disables) and "tick" (always enabled). The extension cannot
	// terminate (tick never disables) but must stay fair-windowed.
	d := NewDef("L18")
	d.Start(counter(3))
	d.Output("work", "w",
		func(s State) bool { return s.(counter) > 0 },
		func(s State) State { return s.(counter) - 1 })
	d.Output("tick", "t",
		func(State) bool { return true },
		func(s State) State { return s })
	a := d.MustBuild()
	x := NewExecution(a, a.Start()[0])
	fair := Lemma18Extend(x, 40)
	if fair {
		t.Error("system never quiesces; extension cannot be finite-fair")
	}
	if x.Len() != 40 {
		t.Fatalf("extension ran %d steps, want 40", x.Len())
	}
	// But the extension is fair in the window sense: work fires until
	// disabled, tick fires regularly.
	if err := CheckFairWindow(x, 2*len(a.Parts())); err != nil {
		t.Errorf("Lemma 18 extension violates fairness window: %v", err)
	}
	// And a quiescing automaton reaches a finite fair execution.
	d2 := NewDef("L18b")
	d2.Start(counter(3))
	d2.Output("work", "w",
		func(s State) bool { return s.(counter) > 0 },
		func(s State) State { return s.(counter) - 1 })
	b := d2.MustBuild()
	y := NewExecution(b, b.Start()[0])
	if !Lemma18Extend(y, 40) {
		t.Error("quiescing automaton must reach a finite fair execution")
	}
	if y.Len() != 3 {
		t.Errorf("expected exactly 3 work steps, got %d", y.Len())
	}
}

func TestFairDebtResetOnFire(t *testing.T) {
	d := NewDef("debt")
	d.Start(counter(0))
	d.Output("tick", "t",
		func(State) bool { return true },
		func(s State) State { return s })
	a := d.MustBuild()
	x := NewExecution(a, a.Start()[0])
	for i := 0; i < 5; i++ {
		if err := x.Extend("tick", 0); err != nil {
			t.Fatal(err)
		}
	}
	if debt := FairDebt(x); debt[0] != 0 {
		t.Errorf("debt after firing at last step = %d, want 0", debt[0])
	}
}

func TestEnabledClassesAndEnabledIn(t *testing.T) {
	split, _ := fig22(t)
	s := split.Start()[0]
	// In the start state (p0,q0): β disabled (A in p0), γ enabled.
	classes := EnabledClasses(split, s)
	if len(classes) != 1 {
		t.Fatalf("EnabledClasses = %v, want one", classes)
	}
	c := split.Parts()[classes[0]]
	if !c.Actions.Has("γ") {
		t.Errorf("wrong class enabled: %v", c)
	}
	acts := EnabledIn(split, s, c)
	if len(acts) != 1 || acts[0] != "γ" {
		t.Errorf("EnabledIn = %v", acts)
	}
	if ClassEnabled(split, s, split.Parts()[1-classes[0]]) {
		t.Error("β's class must be disabled at start")
	}
}
