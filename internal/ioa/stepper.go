package ioa

// A Stepper is an optional successor-visitor fast path for Automaton
// implementations. VisitNext enumerates exactly the states Next(s, a)
// would return, in the same order, but hands them to yield one at a
// time instead of materializing a fresh slice per call — the
// difference matters in exhaustive exploration, where Next allocation
// per (state, action) pair dominates the profile on composed systems.
//
// Contract: VisitNext(s, a, yield) must invoke yield on the elements
// of Next(s, a) in order, stopping early (and returning false) as
// soon as yield returns false; it returns true when the enumeration
// ran to completion. Implementations must not retain yield.
type Stepper interface {
	VisitNext(s State, a Action, yield func(State) bool) bool
}

// VisitNext enumerates the successors of s via act, using the
// automaton's Stepper fast path when it has one and falling back to
// Next otherwise. It is the generic adapter explorers call so that
// plain Automaton implementations keep working unchanged.
func VisitNext(a Automaton, s State, act Action, yield func(State) bool) bool {
	if st, ok := a.(Stepper); ok {
		return st.VisitNext(s, act, yield)
	}
	for _, nxt := range a.Next(s, act) {
		if !yield(nxt) {
			return false
		}
	}
	return true
}

// VisitNext implements Stepper for table automata: the stored
// successor row is walked in place, skipping the defensive copy Next
// makes.
func (t *Table) VisitNext(s State, a Action, yield func(State) bool) bool {
	row, ok := t.steps[s.Key()]
	if !ok {
		if t.sig.IsInput(a) {
			return yield(s)
		}
		return true
	}
	for _, nxt := range row[a] {
		if !yield(nxt) {
			return false
		}
	}
	return true
}

var _ Stepper = (*Table)(nil)

// VisitNext implements Stepper for precondition/effect automata. The
// transition function still materializes its successor list (that is
// its signature), so the win here is uniformity plus the input
// self-loop case, which yields the argument without allocating.
func (p *Prog) VisitNext(s State, a Action, yield func(State) bool) bool {
	t, ok := p.trans[a]
	if !ok {
		return true
	}
	next := t.next(s)
	if len(next) == 0 && t.kind == kindInput {
		return yield(s)
	}
	for _, nxt := range next {
		if !yield(nxt) {
			return false
		}
	}
	return true
}

var _ Stepper = (*Prog)(nil)

// VisitNext implements Stepper for compositions. The single-owner
// fast path — every non-shared action, and the hot path of exhaustive
// exploration — yields each successor tuple directly off the memoized
// per-component successor list, so no intermediate []State is built
// per (state, action) step. Multi-owner (synchronizing) actions fall
// back to the cross-product Next.
func (c *Composite) VisitNext(s State, a Action, yield func(State) bool) bool {
	ts, ok := s.(*TupleState)
	if !ok || ts.Len() != len(c.comps) {
		return true
	}
	owners := c.who[a]
	if len(owners) == 0 {
		return true
	}
	if len(owners) == 1 {
		i := owners[0]
		for _, nxt := range c.compNext(i, ts.At(i), a) {
			if !yield(ts.with1(i, nxt)) {
				return false
			}
		}
		return true
	}
	for _, nxt := range c.Next(s, a) {
		if !yield(nxt) {
			return false
		}
	}
	return true
}

var _ Stepper = (*Composite)(nil)

// VisitNext implements Stepper for hidden automata: hiding changes
// only the signature, so stepping delegates to the inner automaton.
func (h *hidden) VisitNext(s State, a Action, yield func(State) bool) bool {
	return VisitNext(h.inner, s, a, yield)
}

var _ Stepper = (*hidden)(nil)

// VisitNext implements Stepper for renamed automata: actions outside
// the renamed signature have no steps; everything else delegates
// through the inverse mapping.
func (r *Renamed) VisitNext(s State, a Action, yield func(State) bool) bool {
	if !r.sig.HasAction(a) {
		return true
	}
	return VisitNext(r.inner, s, r.m.Invert(a), yield)
}

var _ Stepper = (*Renamed)(nil)
