package ioa

// hidden is Hide_Σ(A): the automaton differing from A only in its
// signature, where the actions of Σ occurring in A have been moved to
// the internal component (§2.1.2).
type hidden struct {
	inner Automaton
	sig   Signature
	// newlyLocal holds former input actions of the inner automaton
	// that became internal (and hence locally controlled) by hiding.
	// Hiding outputs or internals never changes local(A); hiding
	// inputs does, which is legal in the paper's definition but
	// unusual — such actions form their own fairness class.
	newlyLocal []Action
	parts      []Class
}

var _ Automaton = (*hidden)(nil)

// Hide moves the actions of hide from the external signature of a into
// its internal signature; executions are unchanged.
func Hide(a Automaton, hide Set) Automaton {
	sig := HideSignature(a.Sig(), hide)
	h := &hidden{inner: a, sig: sig}
	newlyLocal := sig.Local().Minus(a.Sig().Local())
	parts := a.Parts()
	if newlyLocal.Len() > 0 {
		h.newlyLocal = newlyLocal.Sorted()
		out := make([]Class, len(parts), len(parts)+1)
		copy(out, parts)
		parts = append(out, Class{Name: a.Name() + "/hidden-inputs", Actions: newlyLocal})
	}
	h.parts = parts
	return h
}

// HideOutputsExcept hides every output action of a except those in
// keep; a convenience for compositions where only part of the
// interface remains external (used when forming A₃ in §3.3.3).
func HideOutputsExcept(a Automaton, keep Set) Automaton {
	return Hide(a, a.Sig().Outputs().Minus(keep))
}

// Unwrap returns the automaton underneath Hide/Rename wrappers, or a
// itself.
func Unwrap(a Automaton) Automaton {
	switch w := a.(type) {
	case *hidden:
		return Unwrap(w.inner)
	case *Renamed:
		return Unwrap(w.inner)
	default:
		return a
	}
}

// A Wrapper is an automaton wrapper from outside this package that
// structural analyses may peel: PeelWrapper returns the wrapped
// automaton and the action mapping the wrapper applies (nil when it
// keeps action names). Implemented by explore's closed-world wrapper
// so the reduce package's footprint walk can reach the composition
// underneath.
type Wrapper interface {
	PeelWrapper() (Automaton, *Mapping)
}

// Peel removes one structural wrapper layer (Hide, Rename, or a
// Wrapper implementation), returning the inner automaton and, for
// renaming wrappers, the action mapping applied (outer =
// m.Apply(inner); nil for Hide, which keeps action names). ok is
// false when a is not a wrapper. Structural analyses (the reduce
// package's footprint walk) use Peel to reach composite components
// through the rename chain without losing the action translation that
// Unwrap discards.
func Peel(a Automaton) (inner Automaton, m *Mapping, ok bool) {
	switch w := a.(type) {
	case *hidden:
		return w.inner, nil, true
	case *Renamed:
		return w.inner, w.m, true
	default:
		if w, wok := a.(Wrapper); wok {
			inner, m := w.PeelWrapper()
			return inner, m, true
		}
		return nil, nil, false
	}
}

// Name implements Automaton.
func (h *hidden) Name() string { return h.inner.Name() }

// Sig implements Automaton.
func (h *hidden) Sig() Signature { return h.sig }

// Start implements Automaton.
func (h *hidden) Start() []State { return h.inner.Start() }

// Next implements Automaton.
func (h *hidden) Next(s State, a Action) []State { return h.inner.Next(s, a) }

// Enabled implements Automaton. Former input actions that became
// internal are enabled from every state (input-enabledness of the
// inner automaton) and so are always reported.
func (h *hidden) Enabled(s State) []Action {
	out := h.inner.Enabled(s)
	if len(h.newlyLocal) > 0 {
		out = append(append([]Action(nil), out...), h.newlyLocal...)
	}
	return out
}

// Parts implements Automaton.
func (h *hidden) Parts() []Class { return h.parts }
