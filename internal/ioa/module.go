package ioa

import (
	"fmt"
	"sort"
)

// Execution modules and schedule modules (§2.1). The paper's modules
// are possibly-infinite sets of executions or schedules paired with an
// action signature. This package represents them extensionally over
// finite (bounded-length) sets — the form in which the algebraic laws
// of Corollary 8 are machine-checkable — while liveness-conditioned
// modules such as E₁, E₂, E₃ of Chapter 3 are represented intensionally
// in package proof via leads-to conditions.

// A SchedModule is a schedule module: an action signature together
// with a set of (finite) schedules.
type SchedModule struct {
	sig    Signature
	traces map[string][]Action
}

// NewSchedModule builds a schedule module from a signature and a set
// of schedules. Every schedule must use only actions of the signature.
func NewSchedModule(sig Signature, traces [][]Action) (*SchedModule, error) {
	m := &SchedModule{sig: sig, traces: make(map[string][]Action, len(traces))}
	acts := sig.Acts()
	for _, tr := range traces {
		for _, a := range tr {
			if !acts.Has(a) {
				return nil, fmt.Errorf("ioa: schedule uses action %q outside the module signature", a)
			}
		}
		m.traces[TraceString(tr)] = append([]Action(nil), tr...)
	}
	return m, nil
}

// Sig returns the module's action signature.
func (m *SchedModule) Sig() Signature { return m.sig }

// Has reports whether the trace is a schedule of the module.
func (m *SchedModule) Has(tr []Action) bool {
	_, ok := m.traces[TraceString(tr)]
	return ok
}

// Len returns the number of schedules.
func (m *SchedModule) Len() int { return len(m.traces) }

// Traces returns the schedules sorted by their rendering.
func (m *SchedModule) Traces() [][]Action {
	keys := make([]string, 0, len(m.traces))
	for k := range m.traces {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]Action, 0, len(keys))
	for _, k := range keys {
		out = append(out, m.traces[k])
	}
	return out
}

// Equal reports whether two schedule modules have the same signature
// and the same schedule set (the paper's module equality).
func (m *SchedModule) Equal(o *SchedModule) bool {
	if !m.sig.Equal(o.sig) || len(m.traces) != len(o.traces) {
		return false
	}
	for k := range m.traces {
		if _, ok := o.traces[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every schedule of m is a schedule of o.
func (m *SchedModule) SubsetOf(o *SchedModule) bool {
	for k := range m.traces {
		if _, ok := o.traces[k]; !ok {
			return false
		}
	}
	return true
}

// External returns External(m): the external schedule module obtained
// by projecting every schedule onto ext(S) and dropping internal
// actions from the signature (§2.1).
func (m *SchedModule) External() *SchedModule {
	ext := m.sig.Ext()
	out := &SchedModule{sig: m.sig.External(), traces: make(map[string][]Action, len(m.traces))}
	for _, tr := range m.traces {
		p := ext.Project(tr)
		out.traces[TraceString(p)] = p
	}
	return out
}

// HideModule applies Hide_Σ to a schedule module: only the signature
// changes.
func (m *SchedModule) HideModule(hide Set) *SchedModule {
	return &SchedModule{sig: HideSignature(m.sig, hide), traces: m.traces}
}

// RenameModule applies an injective action mapping to the module.
func (m *SchedModule) RenameModule(f *Mapping) (*SchedModule, error) {
	if err := f.applicable(m.sig.Acts()); err != nil {
		return nil, err
	}
	out := &SchedModule{
		sig: Signature{
			in:       f.applySet(m.sig.in),
			out:      f.applySet(m.sig.out),
			internal: f.applySet(m.sig.internal),
		},
		traces: make(map[string][]Action, len(m.traces)),
	}
	for _, tr := range m.traces {
		r := f.ApplySeq(tr)
		out.traces[TraceString(r)] = r
	}
	return out, nil
}

// ComposeSchedModules forms the composition ∏ᵢSᵢ bounded at maxLen:
// the schedules y over acts(∏Sᵢ) of length ≤ maxLen with y|Sᵢ a
// schedule of Sᵢ for every i (§2.1.1). The component trace sets must
// be prefix-closed for the enumeration to be complete (behavior sets
// of automata are). The empty schedule must belong to each component.
func ComposeSchedModules(maxLen int, mods ...*SchedModule) (*SchedModule, error) {
	sigs := make([]Signature, len(mods))
	for i, m := range mods {
		sigs[i] = m.sig
	}
	sig, err := ComposeSignatures(sigs...)
	if err != nil {
		return nil, err
	}
	alphabet := sig.Acts().Sorted()
	out := &SchedModule{sig: sig, traces: make(map[string][]Action)}

	memberOfAll := func(tr []Action) bool {
		for _, m := range mods {
			proj := m.sig.Acts().Project(tr)
			if !m.Has(proj) {
				return false
			}
		}
		return true
	}

	var rec func(tr []Action)
	rec = func(tr []Action) {
		out.traces[TraceString(tr)] = append([]Action(nil), tr...)
		if len(tr) == maxLen {
			return
		}
		for _, a := range alphabet {
			ext := append(append([]Action(nil), tr...), a)
			if memberOfAll(ext) {
				rec(ext)
			}
		}
	}
	if memberOfAll(nil) {
		rec(nil)
	}
	return out, nil
}

// An ExecModule is an execution module: states and signature of an
// automaton together with a set of executions of that automaton.
type ExecModule struct {
	// Auto carries the states and action signature of the module.
	Auto Automaton
	// Execs is the (finite, bounded) execution set.
	Execs []*Execution
}

// Scheds returns Scheds(E): the schedule module with the signature of
// E and the schedules of its executions.
func (e *ExecModule) Scheds() *SchedModule {
	traces := make([][]Action, 0, len(e.Execs))
	for _, x := range e.Execs {
		traces = append(traces, x.Schedule())
	}
	m, err := NewSchedModule(e.Auto.Sig(), traces)
	if err != nil {
		// Executions of Auto use only actions of Auto's signature.
		panic(fmt.Sprintf("ioa: internal error: %v", err))
	}
	return m
}

// Ubeh returns the unfair behavior Ubeh(E) = External(Scheds(E)).
func (e *ExecModule) Ubeh() *SchedModule { return e.Scheds().External() }
