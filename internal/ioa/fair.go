package ioa

import (
	"fmt"
)

// Fairness (§2.2). A fair execution gives every class of part(A) a
// chance to take a step infinitely often:
//
//  1. if the execution is finite, no action of any class is enabled
//     from its final state;
//  2. if infinite, for each class C either actions of C appear
//     infinitely often, or states from which no action of C is enabled
//     appear infinitely often.
//
// Finite executions are checked exactly (IsFairFinite). Infinite
// executions are approximated by long prefixes: FairDebt reports, per
// class, the length of the longest suffix during which the class was
// continuously enabled without performing an action — a prefix of an
// infinite fair execution keeps every class's debt bounded.

// IsFairFinite reports whether the finite execution x is fair: no
// locally-controlled action is enabled from its final state (§2.2.1,
// condition 1).
func IsFairFinite(x *Execution) bool {
	return len(x.Auto.Enabled(x.Last())) == 0
}

// FairDebt returns, for each class index, the number of trailing steps
// of x during which the class has been continuously enabled without
// any of its actions occurring. A class that is disabled at some
// recent state, or recently performed an action, has debt counted from
// that point.
func FairDebt(x *Execution) []int {
	parts := x.Auto.Parts()
	debt := make([]int, len(parts))
	for ci, c := range parts {
		d := 0
		// Walk backward from the final state.
		for i := x.Len(); i >= 0; i-- {
			if i < x.Len() && c.Actions.Has(x.Acts[i]) {
				break // class acted here
			}
			if !ClassEnabled(x.Auto, x.States[i], c) {
				break // class disabled here
			}
			d++
		}
		// d counted states, not steps; a freshly enabled class at the
		// final state only has debt 0 steps.
		if d > 0 {
			d--
		}
		debt[ci] = d
	}
	return debt
}

// CheckFairWindow verifies a weak-fairness discipline on a long finite
// execution: within every window of `window` consecutive steps, every
// class either performs an action or is disabled at some state in the
// window. This is the finite approximation of §2.2.1 condition 2 used
// to validate scheduler output. It returns an error naming the first
// violating class and position.
func CheckFairWindow(x *Execution, window int) error {
	if window <= 0 {
		return fmt.Errorf("ioa: non-positive fairness window %d", window)
	}
	parts := x.Auto.Parts()
	// lastOK[ci] = last index i (state position) at which class ci was
	// either disabled or performed an action at step i.
	lastOK := make([]int, len(parts))
	for ci, c := range parts {
		if !ClassEnabled(x.Auto, x.States[0], c) {
			lastOK[ci] = 0
		}
	}
	for i := 0; i < x.Len(); i++ {
		for ci, c := range parts {
			acted := c.Actions.Has(x.Acts[i])
			disabled := !ClassEnabled(x.Auto, x.States[i+1], c)
			if acted || disabled {
				lastOK[ci] = i + 1
				continue
			}
			if i+1-lastOK[ci] > window {
				return fmt.Errorf("ioa: class %q continuously enabled without acting for >%d steps (at step %d)",
					c.Name, window, i+1)
			}
		}
	}
	return nil
}

// Lemma18Extend extends a finite execution to a fair execution by
// cycling over the classes of part(A), performing an enabled action of
// the current class when one exists (the construction in the proof of
// Lemma 18). It stops when no locally-controlled action is enabled
// (the extension is then provably fair) or after maxSteps extra steps.
// It returns whether the resulting execution is (finite-)fair.
func Lemma18Extend(x *Execution, maxSteps int) bool {
	parts := x.Auto.Parts()
	if len(parts) == 0 {
		return true
	}
	ci := 0
	for steps := 0; steps < maxSteps; steps++ {
		enabled := x.Auto.Enabled(x.Last())
		if len(enabled) == 0 {
			return true
		}
		// Try classes starting from ci; fall back to any enabled action.
		var chosen Action
		found := false
		for k := 0; k < len(parts) && !found; k++ {
			c := parts[(ci+k)%len(parts)]
			for _, a := range enabled {
				if c.Actions.Has(a) {
					chosen, found = a, true
					break
				}
			}
		}
		ci = (ci + 1) % len(parts)
		if !found {
			chosen = enabled[0]
		}
		if err := x.Extend(chosen, steps); err != nil {
			return false
		}
	}
	return IsFairFinite(x)
}
