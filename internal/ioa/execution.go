package ioa

import (
	"fmt"
	"strings"
)

// An Execution is a finite execution (or execution fragment) of an
// automaton: an alternating sequence s₀ π₁ s₁ π₂ s₂ … of states and
// actions with (sᵢ, πᵢ₊₁, sᵢ₊₁) ∈ steps(A) (§2.1). Infinite executions
// are approximated by long finite prefixes together with fairness
// accounting (see fair.go and internal/sim).
type Execution struct {
	// Auto is the automaton this is an execution of.
	Auto Automaton
	// States holds len(Acts)+1 states.
	States []State
	// Acts holds the actions of the execution in order.
	Acts []Action
}

// NewExecution starts an execution at the given state.
func NewExecution(a Automaton, start State) *Execution {
	return &Execution{Auto: a, States: []State{start}}
}

// Len returns the number of steps.
func (x *Execution) Len() int { return len(x.Acts) }

// Last returns the final state.
func (x *Execution) Last() State { return x.States[len(x.States)-1] }

// First returns the initial state.
func (x *Execution) First() State { return x.States[0] }

// Append extends the execution by one step. It does not validate the
// step; use Extend for validated extension.
func (x *Execution) Append(a Action, to State) {
	x.Acts = append(x.Acts, a)
	x.States = append(x.States, to)
}

// Extend performs action a from the final state, choosing successor
// pick (mod the number of successors), and returns an error if a is
// not enabled.
func (x *Execution) Extend(a Action, pick int) error {
	to, ok := StepTo(x.Auto, x.Last(), a, pick)
	if !ok {
		return fmt.Errorf("ioa: action %q not enabled from state %q", a, x.Last().Key())
	}
	x.Append(a, to)
	return nil
}

// Schedule returns sched(x): the subsequence of actions appearing in x
// (which, for an execution, is all of Acts).
func (x *Execution) Schedule() []Action { return append([]Action(nil), x.Acts...) }

// Behavior returns the external schedule sched(x)|ext(A) — the
// externally visible behavior of the execution.
func (x *Execution) Behavior() []Action {
	return x.Auto.Sig().Ext().Project(x.Acts)
}

// Project returns sched(x)|Π for an arbitrary action set Π.
func (x *Execution) Project(acts Set) []Action { return acts.Project(x.Acts) }

// Clone returns a deep copy (states are shared; they are immutable).
func (x *Execution) Clone() *Execution {
	return &Execution{
		Auto:   x.Auto,
		States: append([]State(nil), x.States...),
		Acts:   append([]Action(nil), x.Acts...),
	}
}

// Prefix returns the prefix of x with n steps.
func (x *Execution) Prefix(n int) *Execution {
	if n > x.Len() {
		n = x.Len()
	}
	return &Execution{
		Auto:   x.Auto,
		States: append([]State(nil), x.States[:n+1]...),
		Acts:   append([]Action(nil), x.Acts[:n]...),
	}
}

// Validate checks that x really is an execution fragment of its
// automaton: every (sᵢ, πᵢ₊₁) pair must admit sᵢ₊₁ as a successor.
// If fromStart is true the first state must be a start state.
func (x *Execution) Validate(fromStart bool) error {
	if len(x.States) != len(x.Acts)+1 {
		return fmt.Errorf("ioa: malformed execution: %d states, %d actions", len(x.States), len(x.Acts))
	}
	if fromStart {
		ok := false
		for _, s := range x.Auto.Start() {
			if s.Key() == x.States[0].Key() {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("ioa: execution does not begin at a start state of %s", x.Auto.Name())
		}
	}
	for i, a := range x.Acts {
		found := false
		for _, nxt := range x.Auto.Next(x.States[i], a) {
			if nxt.Key() == x.States[i+1].Key() {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ioa: step %d (%q) is not a step of %s", i, a, x.Auto.Name())
		}
	}
	return nil
}

// String renders the execution compactly: s0 -a1-> s1 -a2-> ...
func (x *Execution) String() string {
	var b strings.Builder
	b.WriteString(x.States[0].Key())
	for i, a := range x.Acts {
		fmt.Fprintf(&b, " -%s-> %s", a, x.States[i+1].Key())
	}
	return b.String()
}
