package ioa

import (
	"fmt"
	"sort"
)

// A Mapping is an injective action mapping (§2.1.3). It is applicable
// to an object whose actions are all in its domain; actions not listed
// map to themselves (the identity extension is still required to be
// injective over the object's actions).
type Mapping struct {
	fwd map[Action]Action
	bwd map[Action]Action
}

// NewMapping builds an action mapping from explicit pairs. It returns
// an error if the mapping is not injective.
func NewMapping(pairs map[Action]Action) (*Mapping, error) {
	m := &Mapping{fwd: make(map[Action]Action, len(pairs)), bwd: make(map[Action]Action, len(pairs))}
	// Sorted so an injectivity failure names the same witness pair on
	// every run.
	for _, from := range sortedDomain(pairs) {
		to := pairs[from]
		if prev, dup := m.bwd[to]; dup && prev != from {
			return nil, fmt.Errorf("ioa: mapping not injective: %q and %q both map to %q", prev, from, to)
		}
		m.fwd[from] = to
		m.bwd[to] = from
	}
	return m, nil
}

// sortedDomain returns the keys of an action map in lexicographic
// order, for deterministic iteration.
func sortedDomain(pairs map[Action]Action) []Action {
	keys := make([]Action, 0, len(pairs))
	for from := range pairs {
		keys = append(keys, from)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// MustMapping is NewMapping but panics on error.
func MustMapping(pairs map[Action]Action) *Mapping {
	m, err := NewMapping(pairs)
	if err != nil {
		panic(err)
	}
	return m
}

// Apply maps a forward; unlisted actions map to themselves.
func (m *Mapping) Apply(a Action) Action {
	if to, ok := m.fwd[a]; ok {
		return to
	}
	return a
}

// Invert maps a backward; unlisted actions map to themselves.
func (m *Mapping) Invert(a Action) Action {
	if from, ok := m.bwd[a]; ok {
		return from
	}
	return a
}

// ApplySeq maps an action sequence forward.
func (m *Mapping) ApplySeq(seq []Action) []Action {
	out := make([]Action, len(seq))
	for i, a := range seq {
		out[i] = m.Apply(a)
	}
	return out
}

// applicable verifies the identity-extended mapping is injective over
// the given action set: an explicitly mapped target must not collide
// with an unmapped action that maps to itself.
func (m *Mapping) applicable(acts Set) error {
	seen := make(map[Action]Action, len(acts))
	// Sorted so a violation names the same witness pair on every run.
	for _, a := range acts.Sorted() {
		to := m.Apply(a)
		if prev, dup := seen[to]; dup {
			return fmt.Errorf("ioa: mapping not injective on object actions: %q and %q both map to %q", prev, a, to)
		}
		seen[to] = a
	}
	return nil
}

// applySet maps a whole action set forward.
func (m *Mapping) applySet(s Set) Set {
	out := make(Set, len(s))
	for a := range s {
		out.Add(m.Apply(a))
	}
	return out
}

// A Renamed is f(A), the automaton A with its actions renamed by an
// injective action mapping f (§2.1.3). States, start states, and the
// shape of the transition relation are unchanged.
type Renamed struct {
	inner Automaton
	m     *Mapping
	sig   Signature
	parts []Class
}

var _ Automaton = (*Renamed)(nil)

// Rename applies the action mapping m to automaton a.
func Rename(a Automaton, m *Mapping) (*Renamed, error) {
	if err := m.applicable(a.Sig().Acts()); err != nil {
		return nil, err
	}
	sig := Signature{
		in:       m.applySet(a.Sig().Inputs()),
		out:      m.applySet(a.Sig().Outputs()),
		internal: m.applySet(a.Sig().Internals()),
	}
	parts := make([]Class, 0, len(a.Parts()))
	for _, c := range a.Parts() {
		parts = append(parts, Class{Name: c.Name, Actions: m.applySet(c.Actions)})
	}
	return &Renamed{inner: a, m: m, sig: sig, parts: parts}, nil
}

// MustRename is Rename but panics on error.
func MustRename(a Automaton, m *Mapping) *Renamed {
	r, err := Rename(a, m)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements Automaton.
func (r *Renamed) Name() string { return r.inner.Name() }

// Sig implements Automaton.
func (r *Renamed) Sig() Signature { return r.sig }

// Start implements Automaton.
func (r *Renamed) Start() []State { return r.inner.Start() }

// Next implements Automaton.
func (r *Renamed) Next(s State, a Action) []State {
	if !r.sig.HasAction(a) {
		return nil
	}
	return r.inner.Next(s, r.m.Invert(a))
}

// Enabled implements Automaton.
func (r *Renamed) Enabled(s State) []Action {
	inner := r.inner.Enabled(s)
	out := make([]Action, len(inner))
	for i, a := range inner {
		out[i] = r.m.Apply(a)
	}
	return out
}

// Parts implements Automaton.
func (r *Renamed) Parts() []Class { return r.parts }

// Mapping returns the action mapping used by this renaming.
func (r *Renamed) Mapping() *Mapping { return r.m }

// ComposeMappings forms the composition of compatible action mappings
// (§2.1.3): the mapping whose domain is the union of the domains and
// which applies whichever mapping defines the action. The mappings
// must agree wherever their behavior overlaps and the result must be
// injective.
func ComposeMappings(ms ...*Mapping) (*Mapping, error) {
	pairs := make(map[Action]Action)
	for _, m := range ms {
		// Sorted so a conflict names the same witness pair on every run.
		for _, from := range sortedDomain(m.fwd) {
			to := m.fwd[from]
			if prev, dup := pairs[from]; dup && prev != to {
				return nil, fmt.Errorf("ioa: mappings conflict on %q (%q vs %q)", from, prev, to)
			}
			pairs[from] = to
		}
	}
	return NewMapping(pairs)
}

// ChainMappings forms g∘f as a single mapping over the domain of f
// (apply f, then g). Used for the paper's f₁(f₂(E₃)) renaming chain.
func ChainMappings(f, g *Mapping) (*Mapping, error) {
	pairs := make(map[Action]Action)
	for from := range f.fwd {
		pairs[from] = g.Apply(f.Apply(from))
	}
	// Actions moved only by g must be included too.
	for from := range g.fwd {
		if _, covered := pairs[from]; !covered {
			if _, movedByF := f.bwd[from]; !movedByF {
				pairs[from] = g.Apply(from)
			}
		}
	}
	return NewMapping(pairs)
}
