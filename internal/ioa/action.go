// Package ioa implements the input-output automaton model of Lynch and
// Tuttle ("Hierarchical Correctness Proofs for Distributed Algorithms",
// PODC 1987 / MIT-LCS-TR-387).
//
// An input-output automaton is a (possibly infinite-state) labeled
// transition system whose actions are partitioned into input, output,
// and internal actions. Input actions are enabled from every state
// (the automaton is "input-enabled"); output and internal actions are
// locally controlled and are further partitioned into fairness classes,
// one per system component being modeled. The package provides the
// operations of the paper: composition, action hiding, action renaming,
// executions and schedules, execution and schedule modules, and fair
// computation.
package ioa

import (
	"fmt"
	"sort"
	"strings"
)

// An Action is the name of an automaton action. Parameterized action
// families (for example request(u1), request(u2), ...) are represented
// by distinct Action values produced with Act.
type Action string

// Act builds a parameterized action name, for example
// Act("request", "u1") == Action("request(u1)").
func Act(base string, params ...string) Action {
	if len(params) == 0 {
		return Action(base)
	}
	return Action(base + "(" + strings.Join(params, ",") + ")")
}

// Base returns the action's base name, stripping any parameter list.
func (a Action) Base() string {
	s := string(a)
	if i := strings.IndexByte(s, '('); i >= 0 {
		return s[:i]
	}
	return s
}

// Params returns the action's parameters, or nil if it has none.
func (a Action) Params() []string {
	s := string(a)
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return nil
	}
	inner := s[i+1 : len(s)-1]
	if inner == "" {
		return nil
	}
	return strings.Split(inner, ",")
}

// String implements fmt.Stringer.
func (a Action) String() string { return string(a) }

// A Set is a finite set of actions.
type Set map[Action]struct{}

// NewSet builds a set from the given actions.
func NewSet(actions ...Action) Set {
	s := make(Set, len(actions))
	for _, a := range actions {
		s[a] = struct{}{}
	}
	return s
}

// Has reports whether a is in the set.
func (s Set) Has(a Action) bool {
	_, ok := s[a]
	return ok
}

// Add inserts a into the set.
func (s Set) Add(a Action) { s[a] = struct{}{} }

// Len returns the number of actions in the set.
func (s Set) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Union returns a new set containing the actions of s and t.
func (s Set) Union(t Set) Set {
	u := s.Clone()
	for a := range t {
		u[a] = struct{}{}
	}
	return u
}

// Intersect returns a new set containing the actions in both s and t.
func (s Set) Intersect(t Set) Set {
	u := make(Set)
	for a := range s {
		if t.Has(a) {
			u[a] = struct{}{}
		}
	}
	return u
}

// Minus returns a new set containing the actions of s not in t.
func (s Set) Minus(t Set) Set {
	u := make(Set)
	for a := range s {
		if !t.Has(a) {
			u[a] = struct{}{}
		}
	}
	return u
}

// Disjoint reports whether s and t share no action.
func (s Set) Disjoint(t Set) bool {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	for a := range small {
		if large.Has(a) {
			return false
		}
	}
	return true
}

// Sorted returns the actions of the set in lexicographic order.
func (s Set) Sorted() []Action {
	out := make([]Action, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer; actions are listed sorted.
func (s Set) String() string {
	parts := make([]string, 0, len(s))
	for _, a := range s.Sorted() {
		parts = append(parts, string(a))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Filter returns the subset of s whose actions satisfy keep.
func (s Set) Filter(keep func(Action) bool) Set {
	u := make(Set)
	for a := range s {
		if keep(a) {
			u[a] = struct{}{}
		}
	}
	return u
}

// Project returns the subsequence of seq consisting of actions in s
// (the paper's y|Π operation on schedules).
func (s Set) Project(seq []Action) []Action {
	var out []Action
	for _, a := range seq {
		if s.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// TraceString renders an action sequence compactly, for diagnostics
// and for use as a map key in behavior-set computations.
func TraceString(seq []Action) string {
	if len(seq) == 0 {
		return "ε"
	}
	var b strings.Builder
	for i, a := range seq {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(a))
	}
	return b.String()
}

// dupErr is a helper for reporting an action appearing where it must not.
func dupErr(a Action, where string) error {
	return fmt.Errorf("action %q %s", a, where)
}
