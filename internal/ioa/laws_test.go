package ioa_test

// Property tests of the Chapter 2 algebra (Corollary 8, Lemmas 5–14,
// 19) on randomized finite automata. These live in an external test
// package so they can drive the explore enumerators against the core
// operators.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/testseed"
)

// randAutomaton builds a small random table automaton over the given
// action sets. Every output/internal action gets its own class.
func randAutomaton(rng *rand.Rand, name string, in, out, internal []ioa.Action) *ioa.Table {
	sig := ioa.MustSignature(in, out, internal)
	nStates := 2 + rng.Intn(3)
	states := make([]ioa.State, nStates)
	for i := range states {
		states[i] = ioa.KeyState(fmt.Sprintf("%s%d", name, i))
	}
	var steps []ioa.Step
	all := append(append(append([]ioa.Action(nil), in...), out...), internal...)
	for _, act := range all {
		// Each action gets 1-3 random transitions.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			steps = append(steps, ioa.Step{
				From: states[rng.Intn(nStates)],
				Act:  act,
				To:   states[rng.Intn(nStates)],
			})
		}
	}
	var classes []ioa.Class
	for _, act := range append(append([]ioa.Action(nil), out...), internal...) {
		classes = append(classes, ioa.Class{Name: name + "-" + string(act), Actions: ioa.NewSet(act)})
	}
	return ioa.MustTable(name, sig, states[:1], steps, classes)
}

// TestLemma5ExecsOfCompositionProject: every bounded execution of a
// random composition projects to executions of the components
// (Lemma 1/5), and its schedule's projections are schedules of the
// components (Lemma 6).
func TestLemma5ExecsOfCompositionProject(t *testing.T) {
	base := testseed.Base(t)
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(base + seed))
		a := randAutomaton(rng, "A", []ioa.Action{"y"}, []ioa.Action{"x"}, []ioa.Action{"h"})
		b := randAutomaton(rng, "B", []ioa.Action{"x"}, []ioa.Action{"y"}, nil)
		c, err := ioa.Compose("AB", a, b)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := explore.New(explore.Options{Workers: 1}).Execs(context.Background(), c, 4)
		if err != nil {
			t.Fatal(err)
		}
		schedsA, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), a, 4)
		if err != nil {
			t.Fatal(err)
		}
		schedsB, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), b, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range mod.Execs {
			for i, comp := range []ioa.Automaton{a, b} {
				proj, err := c.ProjectExecution(x, i)
				if err != nil {
					t.Fatal(err)
				}
				if err := proj.Validate(true); err != nil {
					t.Fatalf("seed %d: projection %d invalid: %v", seed, i, err)
				}
				scheds := schedsA
				if i == 1 {
					scheds = schedsB
				}
				if !scheds.Has(proj.Schedule()) {
					t.Fatalf("seed %d: projected schedule %v not a schedule of %s",
						seed, ioa.TraceString(proj.Schedule()), comp.Name())
				}
			}
		}
	}
}

// TestLemma6SchedsCommute: Scheds(∏Aᵢ) = ∏Scheds(Aᵢ) on bounded
// enumerations for random non-interacting automata (disjoint
// alphabets make the bounded composition enumeration exact).
func TestLemma6SchedsCommute(t *testing.T) {
	const depth = 3
	base := testseed.Base(t)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(base + seed))
		a := randAutomaton(rng, "A", nil, []ioa.Action{"x"}, nil)
		b := randAutomaton(rng, "B", nil, []ioa.Action{"y"}, nil)
		c, err := ioa.Compose("AB", a, b)
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), c, depth)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), a, depth)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), b, depth)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := ioa.ComposeSchedModules(depth, sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Equal(rhs) {
			t.Fatalf("seed %d: Scheds(A·B) ≠ Scheds(A)·Scheds(B)", seed)
		}
	}
}

// TestLemma7ExternalCommute: External(∏Sᵢ) = ∏External(Sᵢ) on the
// same bounded enumerations, with internal actions present.
func TestLemma7ExternalCommute(t *testing.T) {
	const depth = 3
	base := testseed.Base(t)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(base + seed))
		a := randAutomaton(rng, "A", nil, []ioa.Action{"x"}, []ioa.Action{"ha"})
		b := randAutomaton(rng, "B", nil, []ioa.Action{"y"}, []ioa.Action{"hb"})
		c, err := ioa.Compose("AB", a, b)
		if err != nil {
			t.Fatal(err)
		}
		// LHS: behaviors of the composition.
		lhs, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), c, depth)
		if err != nil {
			t.Fatal(err)
		}
		// RHS: compose the components' behaviors.
		ba, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), a, depth)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), b, depth)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := ioa.ComposeSchedModules(depth, ba, bb)
		if err != nil {
			t.Fatal(err)
		}
		// Depth caveat: an execution of depth k yields an external
		// trace of length ≤ k, so LHS ⊆ RHS always; RHS traces of
		// length ≤ depth that used few internal steps must appear in
		// LHS computed with a deeper internal budget.
		deep, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), c, 2*depth)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range lhs.Traces() {
			if !rhs.Has(tr) {
				t.Fatalf("seed %d: behavior %v of A·B missing from product", seed, ioa.TraceString(tr))
			}
		}
		for _, tr := range rhs.Traces() {
			if !deep.Has(tr) {
				t.Fatalf("seed %d: product behavior %v not exhibited by A·B", seed, ioa.TraceString(tr))
			}
		}
	}
}

// TestLemma12HideCommutesWithExecs: hiding changes no executions, only
// signatures: Execs(Hide(A)) and Execs(A) coincide stepwise, and
// Behaviors(Hide(A)) equals Behaviors(A) projected.
func TestLemma12HideCommutesWithExecs(t *testing.T) {
	base := testseed.Base(t)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(base + seed))
		a := randAutomaton(rng, "A", []ioa.Action{"i"}, []ioa.Action{"x", "z"}, nil)
		h := ioa.Hide(a, ioa.NewSet("z"))
		sa, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), a, 3)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), h, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Hiding leaves the schedule SET untouched (only the signature
		// changes), so compare trace sets directly.
		if sa.Len() != sh.Len() {
			t.Fatalf("seed %d: schedule sets differ under hiding: %d vs %d", seed, sa.Len(), sh.Len())
		}
		for _, tr := range sa.Traces() {
			if !sh.Has(tr) {
				t.Fatalf("seed %d: schedule %v lost by hiding", seed, ioa.TraceString(tr))
			}
		}
		// Behaviors: hide(z) behaviors = project out z.
		ba, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), a, 3)
		if err != nil {
			t.Fatal(err)
		}
		bh, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), h, 3)
		if err != nil {
			t.Fatal(err)
		}
		keep := h.Sig().Ext()
		for _, tr := range ba.Traces() {
			if !bh.Has(keep.Project(tr)) {
				t.Fatalf("seed %d: projected behavior missing after hide", seed)
			}
		}
	}
}

// TestLemma14HideComposeCommute: Hide_∪Σᵢ(∏Oᵢ) = ∏Hide_Σᵢ(Oᵢ) when
// each Σᵢ is local to its component.
func TestLemma14HideComposeCommute(t *testing.T) {
	base := testseed.Base(t)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(base + seed))
		a := randAutomaton(rng, "A", nil, []ioa.Action{"x", "xz"}, nil)
		b := randAutomaton(rng, "B", nil, []ioa.Action{"y", "yz"}, nil)
		lhsInner, err := ioa.Compose("AB", a, b)
		if err != nil {
			t.Fatal(err)
		}
		lhs := ioa.Hide(lhsInner, ioa.NewSet("xz", "yz"))
		rhs, err := ioa.Compose("AB2", ioa.Hide(a, ioa.NewSet("xz")), ioa.Hide(b, ioa.NewSet("yz")))
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Sig().Equal(rhs.Sig()) {
			t.Fatalf("seed %d: Lemma 14 signatures differ:\n%v\n%v", seed, lhs.Sig(), rhs.Sig())
		}
		sl, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), lhs, 3)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := explore.New(explore.Options{Workers: 1}).Schedules(context.Background(), rhs, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !sl.Equal(sr) {
			t.Fatalf("seed %d: Lemma 14 schedules differ", seed)
		}
	}
}

// TestLemma19FairComposition: a composite execution is fair iff its
// projections are fair — checked on finite fair executions of random
// quiescing systems (finite fairness: nothing locally controlled is
// enabled at the end).
func TestLemma19FairComposition(t *testing.T) {
	// Deterministic quiescing components: each fires its action a
	// bounded number of times.
	mk := func(name string, act ioa.Action, k int) *ioa.Table {
		sig := ioa.MustSignature(nil, []ioa.Action{act}, nil)
		var steps []ioa.Step
		states := make([]ioa.State, k+1)
		for i := range states {
			states[i] = ioa.KeyState(fmt.Sprintf("%s%d", name, i))
		}
		for i := 0; i < k; i++ {
			steps = append(steps, ioa.Step{From: states[i], Act: act, To: states[i+1]})
		}
		return ioa.MustTable(name, sig, states[:1], steps,
			[]ioa.Class{{Name: name, Actions: ioa.NewSet(act)}})
	}
	a := mk("A", "x", 2)
	b := mk("B", "y", 3)
	c, err := ioa.Compose("AB", a, b)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := explore.New(explore.Options{Workers: 1}).Execs(context.Background(), c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range mod.Execs {
		pa, err := c.ProjectExecution(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := c.ProjectExecution(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		compFair := ioa.IsFairFinite(x)
		partsFair := ioa.IsFairFinite(pa) && ioa.IsFairFinite(pb)
		if compFair != partsFair {
			t.Fatalf("Lemma 19 violated on %s: composite fair=%t, components fair=%t",
				ioa.TraceString(x.Acts), compFair, partsFair)
		}
	}
}
