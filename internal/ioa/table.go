package ioa

import (
	"fmt"
	"sort"
)

// A Table is an explicit finite automaton given by an enumerated
// transition table. It is convenient for the small examples of the
// paper's figures, for randomized property testing, and as the output
// of constructions such as the primitive decomposition of §2.2.3.
type Table struct {
	name  string
	sig   Signature
	start []State
	// steps maps state key -> action -> successor states.
	steps map[string]map[Action][]State
	// states maps key -> state, to recover State values.
	states map[string]State
	parts  []Class
	local  []Action
}

var _ Automaton = (*Table)(nil)

// A Step is one transition (s, a, s') of a table automaton.
type Step struct {
	From State
	Act  Action
	To   State
}

// NewTable builds a finite automaton from explicit components. The
// partition parts must cover exactly the locally-controlled actions of
// sig. Input-enabledness is completed automatically: any input action
// with no transition from some listed state gets a self-loop there.
func NewTable(name string, sig Signature, start []State, steps []Step, parts []Class) (*Table, error) {
	if len(start) == 0 {
		return nil, fmt.Errorf("ioa: table %s: no start states", name)
	}
	t := &Table{
		name:   name,
		sig:    sig,
		start:  append([]State(nil), start...),
		steps:  make(map[string]map[Action][]State),
		states: make(map[string]State),
		parts:  parts,
		local:  sig.Local().Sorted(),
	}
	record := func(s State) {
		if _, ok := t.states[s.Key()]; !ok {
			t.states[s.Key()] = s
			t.steps[s.Key()] = make(map[Action][]State)
		}
	}
	for _, s := range start {
		record(s)
	}
	for _, st := range steps {
		if !sig.HasAction(st.Act) {
			return nil, fmt.Errorf("ioa: table %s: step uses action %q outside the signature", name, st.Act)
		}
		record(st.From)
		record(st.To)
		t.steps[st.From.Key()][st.Act] = append(t.steps[st.From.Key()][st.Act], st.To)
	}
	// Complete inputs with self-loops.
	inputs := sig.Inputs().Sorted()
	for key := range t.steps {
		for _, in := range inputs {
			if len(t.steps[key][in]) == 0 {
				t.steps[key][in] = []State{t.states[key]}
			}
		}
	}
	if err := CheckPartition(t); err != nil {
		return nil, err
	}
	return t, nil
}

// MustTable is NewTable but panics on error.
func MustTable(name string, sig Signature, start []State, steps []Step, parts []Class) *Table {
	t, err := NewTable(name, sig, start, steps, parts)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Automaton.
func (t *Table) Name() string { return t.name }

// Sig implements Automaton.
func (t *Table) Sig() Signature { return t.sig }

// Start implements Automaton.
func (t *Table) Start() []State { return append([]State(nil), t.start...) }

// Next implements Automaton. States outside the table are treated as
// having only input self-loops (they are unreachable by construction,
// but this keeps the automaton total and input-enabled).
func (t *Table) Next(s State, a Action) []State {
	row, ok := t.steps[s.Key()]
	if !ok {
		if t.sig.IsInput(a) {
			return []State{s}
		}
		return nil
	}
	return append([]State(nil), row[a]...)
}

// Enabled implements Automaton.
func (t *Table) Enabled(s State) []Action {
	row, ok := t.steps[s.Key()]
	if !ok {
		return nil
	}
	var out []Action
	for _, a := range t.local {
		if len(row[a]) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// Parts implements Automaton.
func (t *Table) Parts() []Class { return t.parts }

// States returns all states appearing in the table, sorted by key.
func (t *Table) States() []State {
	keys := make([]string, 0, len(t.states))
	for k := range t.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]State, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.states[k])
	}
	return out
}

// Steps returns every explicit step of the table (excluding the
// synthesized input self-loops of states that declared the input
// elsewhere; self-loops added for completion are included since they
// are real steps of the automaton). Steps are sorted for determinism.
func (t *Table) Steps() []Step {
	var out []Step
	for key, row := range t.steps {
		from := t.states[key]
		for act, tos := range row {
			for _, to := range tos {
				out = append(out, Step{From: from, Act: act, To: to})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Key() != b.From.Key() {
			return a.From.Key() < b.From.Key()
		}
		if a.Act != b.Act {
			return a.Act < b.Act
		}
		return a.To.Key() < b.To.Key()
	})
	return out
}
