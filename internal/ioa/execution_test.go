package ioa

import (
	"reflect"
	"strings"
	"testing"
)

func TestExecutionBasics(t *testing.T) {
	p := buildCounter(t)
	x := NewExecution(p, p.Start()[0])
	if x.Len() != 0 || x.First().Key() != "0" || x.Last().Key() != "0" {
		t.Fatal("fresh execution wrong")
	}
	steps := []Action{"inc", "inc", "emit"}
	for _, a := range steps {
		if err := x.Extend(a, 0); err != nil {
			t.Fatalf("Extend(%v): %v", a, err)
		}
	}
	if x.Last().Key() != "1" {
		t.Errorf("final state = %v", x.Last().Key())
	}
	if !reflect.DeepEqual(x.Schedule(), steps) {
		t.Errorf("Schedule = %v", x.Schedule())
	}
	if err := x.Validate(true); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := x.Extend("emit", 0); err != nil {
		t.Fatal(err)
	}
	if err := x.Extend("emit", 0); err == nil {
		t.Error("emit from 0 must fail")
	}
}

func TestExecutionBehaviorProjection(t *testing.T) {
	d := NewDef("beh")
	d.Start(counter(0))
	d.Output("pub", "c",
		func(State) bool { return true },
		func(s State) State { return s.(counter) + 1 })
	d.Internal("hid", "c",
		func(State) bool { return true },
		func(s State) State { return s.(counter) + 1 })
	p := d.MustBuild()
	x := NewExecution(p, p.Start()[0])
	for _, a := range []Action{"pub", "hid", "pub", "hid"} {
		if err := x.Extend(a, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := x.Behavior(); !reflect.DeepEqual(got, []Action{"pub", "pub"}) {
		t.Errorf("Behavior = %v", got)
	}
	if got := x.Project(NewSet("hid")); len(got) != 2 {
		t.Errorf("Project = %v", got)
	}
}

func TestExecutionValidateCatchesCorruption(t *testing.T) {
	p := buildCounter(t)
	x := NewExecution(p, p.Start()[0])
	if err := x.Extend("inc", 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the final state.
	x.States[1] = counter(99)
	if err := x.Validate(true); err == nil {
		t.Error("Validate must catch a bogus step")
	}
	// Wrong start state.
	y := NewExecution(p, counter(7))
	if err := y.Validate(true); err == nil {
		t.Error("Validate(fromStart) must catch a non-start origin")
	}
	if err := y.Validate(false); err != nil {
		t.Errorf("fragment validation should pass: %v", err)
	}
}

func TestExecutionPrefixAndClone(t *testing.T) {
	p := buildCounter(t)
	x := NewExecution(p, p.Start()[0])
	for _, a := range []Action{"inc", "inc", "emit"} {
		if err := x.Extend(a, 0); err != nil {
			t.Fatal(err)
		}
	}
	pre := x.Prefix(2)
	if pre.Len() != 2 || pre.Last().Key() != "2" {
		t.Errorf("Prefix wrong: %v", pre)
	}
	// Over-long prefix clamps.
	if x.Prefix(10).Len() != 3 {
		t.Error("Prefix must clamp to execution length")
	}
	c := x.Clone()
	c.Acts[0] = "emit"
	if x.Acts[0] != "inc" {
		t.Error("Clone shares action storage")
	}
}

func TestExecutionString(t *testing.T) {
	p := buildCounter(t)
	x := NewExecution(p, p.Start()[0])
	if err := x.Extend("inc", 0); err != nil {
		t.Fatal(err)
	}
	s := x.String()
	if !strings.Contains(s, "-inc->") {
		t.Errorf("String = %q", s)
	}
}

func TestJoinKeysUnambiguous(t *testing.T) {
	if JoinKeys("ab", "c") == JoinKeys("a", "bc") {
		t.Error("JoinKeys ambiguous")
	}
	if JoinKeys() != "" {
		t.Error("JoinKeys() should be empty")
	}
}
