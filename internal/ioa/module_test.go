package ioa

import (
	"testing"
)

func schedModule(t *testing.T, sig Signature, traces ...[]Action) *SchedModule {
	t.Helper()
	m, err := NewSchedModule(sig, traces)
	if err != nil {
		t.Fatalf("NewSchedModule: %v", err)
	}
	return m
}

func TestSchedModuleBasics(t *testing.T) {
	sig := MustSignature([]Action{"i"}, []Action{"o"}, []Action{"h"})
	m := schedModule(t, sig, nil, []Action{"i"}, []Action{"i", "o"})
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Has(nil) || !m.Has([]Action{"i", "o"}) || m.Has([]Action{"o", "i"}) {
		t.Error("Has wrong")
	}
	if _, err := NewSchedModule(sig, [][]Action{{"zz"}}); err == nil {
		t.Error("schedule outside signature must be rejected")
	}
}

func TestSchedModuleExternal(t *testing.T) {
	sig := MustSignature([]Action{"i"}, []Action{"o"}, []Action{"h"})
	m := schedModule(t, sig, []Action{"i", "h", "o"}, []Action{"h"}, nil)
	e := m.External()
	if e.Sig().Internals().Len() != 0 {
		t.Error("External must drop internal actions from the signature")
	}
	if !e.Has([]Action{"i", "o"}) {
		t.Error("projection i h o -> i o missing")
	}
	if !e.Has(nil) {
		t.Error("projection of h is the empty behavior")
	}
	if e.Len() != 2 {
		t.Errorf("External.Len = %d, want 2 (h-trace collapses onto ε)", e.Len())
	}
}

func TestSchedModuleEqualSubset(t *testing.T) {
	sig := MustSignature(nil, []Action{"o"}, nil)
	a := schedModule(t, sig, nil, []Action{"o"})
	b := schedModule(t, sig, nil, []Action{"o"})
	c := schedModule(t, sig, nil)
	if !a.Equal(b) {
		t.Error("equal modules not Equal")
	}
	if a.Equal(c) || !c.SubsetOf(a) || a.SubsetOf(c) {
		t.Error("subset relations wrong")
	}
}

func TestSchedModuleRename(t *testing.T) {
	sig := MustSignature(nil, []Action{"o"}, nil)
	m := schedModule(t, sig, []Action{"o", "o"})
	f := MustMapping(map[Action]Action{"o": "p"})
	r, err := m.RenameModule(f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has([]Action{"p", "p"}) || r.Has([]Action{"o", "o"}) {
		t.Error("rename of schedules wrong")
	}
}

func TestSchedModuleHide(t *testing.T) {
	sig := MustSignature(nil, []Action{"o"}, nil)
	m := schedModule(t, sig, []Action{"o"})
	h := m.HideModule(NewSet("o"))
	if !h.Sig().IsInternal("o") {
		t.Error("hide must move o to internal")
	}
	if !h.Has([]Action{"o"}) {
		t.Error("hide must not change schedules")
	}
}

// TestComposeSchedModules checks the bounded composition and the
// Lemma 10 laws (commutativity) on a small example.
func TestComposeSchedModules(t *testing.T) {
	// S over {x}: prefix-closed {ε, x}; T over {y}: {ε, y}.
	sx := MustSignature(nil, []Action{"x"}, nil)
	sy := MustSignature(nil, []Action{"y"}, nil)
	s := schedModule(t, sx, nil, []Action{"x"})
	u := schedModule(t, sy, nil, []Action{"y"})
	st, err := ComposeSchedModules(2, s, u)
	if err != nil {
		t.Fatal(err)
	}
	wantMembers := [][]Action{nil, {"x"}, {"y"}, {"x", "y"}, {"y", "x"}}
	for _, w := range wantMembers {
		if !st.Has(w) {
			t.Errorf("composition missing %v", TraceString(w))
		}
	}
	if st.Has([]Action{"x", "x"}) {
		t.Error("composition must respect component bounds (no xx)")
	}
	ts, err := ComposeSchedModules(2, u, s)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(ts) {
		t.Error("Lemma 10: composition must be commutative")
	}
}

// TestLemma9UbehOfComposition: Ubeh(∏Oᵢ) = ∏Ubeh(Oᵢ) on bounded
// enumerations: the external behavior of the ping-pong composition
// equals the composition of component behaviors.
func TestLemma9UbehOfComposition(t *testing.T) {
	a, b, c := pingPong(t)
	const depth = 4
	execsC := enumerate(t, c, depth)
	ubehC := execsC.Ubeh()

	execsA := enumerate(t, a, depth)
	execsB := enumerate(t, b, depth)
	composed, err := ComposeSchedModules(depth, execsA.Ubeh(), execsB.Ubeh())
	if err != nil {
		t.Fatal(err)
	}
	// Depth-bounded caveat: compare traces up to the common bound.
	for _, tr := range ubehC.Traces() {
		if !composed.Has(tr) {
			t.Errorf("Ubeh(A·B) trace %s missing from Ubeh(A)·Ubeh(B)", TraceString(tr))
		}
	}
	for _, tr := range composed.Traces() {
		if len(tr) > depth {
			continue
		}
		if !ubehC.Has(tr) {
			t.Errorf("Ubeh(A)·Ubeh(B) trace %s missing from Ubeh(A·B)", TraceString(tr))
		}
	}
}

// enumerate builds the bounded execution module of an automaton by
// depth-first enumeration (mirrors explore.Execs without the import
// cycle).
func enumerate(t *testing.T, a Automaton, depth int) *ExecModule {
	t.Helper()
	acts := a.Sig().Acts().Sorted()
	var all []*Execution
	var rec func(x *Execution)
	rec = func(x *Execution) {
		all = append(all, x.Clone())
		if x.Len() == depth {
			return
		}
		for _, act := range acts {
			for _, nxt := range a.Next(x.Last(), act) {
				x.Append(act, nxt)
				rec(x)
				x.Acts = x.Acts[:len(x.Acts)-1]
				x.States = x.States[:len(x.States)-1]
			}
		}
	}
	for _, s := range a.Start() {
		rec(NewExecution(a, s))
	}
	return &ExecModule{Auto: a, Execs: all}
}

func TestExecModuleScheds(t *testing.T) {
	_, _, c := pingPong(t)
	m := enumerate(t, c, 3)
	scheds := m.Scheds()
	if !scheds.Has([]Action{"α", "β", "α"}) {
		t.Error("schedule αβα missing")
	}
	if scheds.Has([]Action{"β"}) {
		t.Error("β cannot fire first")
	}
}
