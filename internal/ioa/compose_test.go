package ioa

import (
	"testing"
)

// pingPong builds the Figure 2.1-style pair locally (the figures
// package depends on ioa, so the tests here rebuild the tiny system).
func pingPong(t *testing.T) (*Table, *Table, *Composite) {
	t.Helper()
	sigA := MustSignature([]Action{"β"}, []Action{"α"}, nil)
	a := MustTable("A", sigA,
		[]State{KeyState("a0")},
		[]Step{
			{From: KeyState("a0"), Act: "α", To: KeyState("a1")},
			{From: KeyState("a1"), Act: "β", To: KeyState("a0")},
		},
		[]Class{{Name: "A", Actions: NewSet("α")}},
	)
	sigB := MustSignature([]Action{"α"}, []Action{"β"}, nil)
	b := MustTable("B", sigB,
		[]State{KeyState("b0")},
		[]Step{
			{From: KeyState("b0"), Act: "α", To: KeyState("b1")},
			{From: KeyState("b1"), Act: "β", To: KeyState("b0")},
		},
		[]Class{{Name: "B", Actions: NewSet("β")}},
	)
	c, err := Compose("AB", a, b)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return a, b, c
}

// TestFigure21Composition checks the composition example of Figure
// 2.1: all actions of A·B are outputs, the partition keeps α and β in
// separate classes, and executions alternate α and β.
func TestFigure21Composition(t *testing.T) {
	_, _, c := pingPong(t)
	if c.Sig().Inputs().Len() != 0 {
		t.Errorf("composition should have no inputs: %v", c.Sig())
	}
	if !c.Sig().IsOutput("α") || !c.Sig().IsOutput("β") {
		t.Error("α and β must be outputs of the composition")
	}
	if len(c.Parts()) != 2 {
		t.Errorf("partition should have 2 classes, got %d", len(c.Parts()))
	}
	// Drive the composition: only α enabled initially, then only β.
	s := c.Start()[0]
	x := NewExecution(c, s)
	for i := 0; i < 6; i++ {
		enabled := c.Enabled(x.Last())
		if len(enabled) != 1 {
			t.Fatalf("step %d: enabled = %v, want exactly one", i, enabled)
		}
		want := Action("α")
		if i%2 == 1 {
			want = "β"
		}
		if enabled[0] != want {
			t.Fatalf("step %d: enabled %v, want %v (outputs must alternate)", i, enabled[0], want)
		}
		if err := x.Extend(enabled[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Validate(true); err != nil {
		t.Fatalf("execution invalid: %v", err)
	}
}

// TestLemma1Projection: projections of an execution of a composition
// are executions of the components.
func TestLemma1Projection(t *testing.T) {
	a, b, c := pingPong(t)
	x := NewExecution(c, c.Start()[0])
	for _, act := range []Action{"α", "β", "α", "β"} {
		if err := x.Extend(act, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, comp := range []Automaton{a, b} {
		proj, err := c.ProjectExecution(x, i)
		if err != nil {
			t.Fatalf("project %d: %v", i, err)
		}
		if err := proj.Validate(true); err != nil {
			t.Errorf("Lemma 1 violated for component %d: %v", i, err)
		}
		if proj.Auto != comp {
			t.Errorf("projection %d has wrong automaton", i)
		}
		// Both components share every action here, so projections keep
		// all steps.
		if proj.Len() != x.Len() {
			t.Errorf("projection %d lost steps: %d vs %d", i, proj.Len(), x.Len())
		}
	}
}

// TestLemma2Zip: executions of components with compatible schedules
// combine into an execution of the composition. We exercise it via a
// system where components do NOT share all actions.
func TestLemma2Zip(t *testing.T) {
	sigA := MustSignature(nil, []Action{"x"}, nil)
	a := MustTable("X", sigA,
		[]State{KeyState("0")},
		[]Step{{From: KeyState("0"), Act: "x", To: KeyState("0")}},
		[]Class{{Name: "x", Actions: NewSet("x")}},
	)
	sigB := MustSignature(nil, []Action{"y"}, nil)
	b := MustTable("Y", sigB,
		[]State{KeyState("0")},
		[]Step{{From: KeyState("0"), Act: "y", To: KeyState("0")}},
		[]Class{{Name: "y", Actions: NewSet("y")}},
	)
	c := MustCompose("XY", a, b)
	// Interleave x and y arbitrarily; both projections must validate
	// and the composite execution must exist step by step.
	x := NewExecution(c, c.Start()[0])
	for _, act := range []Action{"x", "x", "y", "x", "y"} {
		if err := x.Extend(act, 0); err != nil {
			t.Fatalf("composite cannot interleave: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		proj, err := c.ProjectExecution(x, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := proj.Validate(true); err != nil {
			t.Errorf("projection %d invalid: %v", i, err)
		}
	}
	p0, _ := c.ProjectExecution(x, 0)
	p1, _ := c.ProjectExecution(x, 1)
	if p0.Len() != 3 || p1.Len() != 2 {
		t.Errorf("projection lengths %d,%d; want 3,2", p0.Len(), p1.Len())
	}
}

// TestCorollary3LocalControl: a locally-controlled action of one
// component is enabled in the composition exactly when enabled in that
// component, regardless of other components' states.
func TestCorollary3LocalControl(t *testing.T) {
	a, _, c := pingPong(t)
	s := c.Start()[0].(*TupleState)
	enabledComposite := NewSet(c.Enabled(s)...)
	enabledA := NewSet(a.Enabled(s.At(0))...)
	for act := range enabledA {
		if !enabledComposite.Has(act) {
			t.Errorf("action %v enabled in component but not composition", act)
		}
	}
	for _, act := range []Action{"α", "β"} {
		inComp := enabledComposite.Has(act)
		var inOwner bool
		if act == "α" {
			inOwner = enabledA.Has(act)
		} else {
			_, b, _ := pingPong(t)
			inOwner = NewSet(b.Enabled(s.At(1))...).Has(act)
		}
		if inComp != inOwner {
			t.Errorf("Corollary 3 violated for %v: composite=%t owner=%t", act, inComp, inOwner)
		}
	}
}

func TestComposeIncompatible(t *testing.T) {
	sig := MustSignature(nil, []Action{"x"}, nil)
	mk := func(name string) *Table {
		return MustTable(name, sig, []State{KeyState("0")},
			[]Step{{From: KeyState("0"), Act: "x", To: KeyState("0")}},
			[]Class{{Name: "c", Actions: NewSet("x")}})
	}
	if _, err := Compose("bad", mk("P"), mk("Q")); err == nil {
		t.Error("composing automata with shared outputs must fail")
	}
}

func TestCompositeStartCartesianProduct(t *testing.T) {
	sig := MustSignature(nil, []Action{"x"}, nil)
	a := MustTable("P", sig,
		[]State{KeyState("0"), KeyState("1")},
		[]Step{{From: KeyState("0"), Act: "x", To: KeyState("0")}},
		[]Class{{Name: "c", Actions: NewSet("x")}})
	sig2 := MustSignature(nil, []Action{"y"}, nil)
	b := MustTable("Q", sig2,
		[]State{KeyState("0"), KeyState("1"), KeyState("2")},
		[]Step{{From: KeyState("0"), Act: "y", To: KeyState("0")}},
		[]Class{{Name: "c", Actions: NewSet("y")}})
	c := MustCompose("PQ", a, b)
	if got := len(c.Start()); got != 6 {
		t.Errorf("start states = %d, want 2*3", got)
	}
}

func TestTupleStateKeyUnambiguous(t *testing.T) {
	// ("ab","c") and ("a","bc") must produce different keys.
	s1 := NewTupleState([]State{KeyState("ab"), KeyState("c")})
	s2 := NewTupleState([]State{KeyState("a"), KeyState("bc")})
	if s1.Key() == s2.Key() {
		t.Errorf("ambiguous composite keys: %q", s1.Key())
	}
}

func TestCompositeNextNondeterministicCross(t *testing.T) {
	// Two components sharing an input with nondeterministic effects:
	// the composite successors are the cross product.
	mk := func(name, class string, out Action) *Prog {
		d := NewDef(name)
		d.Start(KeyState("0"))
		d.InputND("go", func(s State) []State {
			return []State{KeyState("L"), KeyState("R")}
		})
		d.Output(out, class,
			func(State) bool { return false },
			func(s State) State { return s })
		return d.MustBuild()
	}
	p := mk("P", "p", "op")
	q := mk("Q", "q", "oq")
	d := NewDef("driver")
	d.Start(KeyState("d"))
	d.Output("go", "drv",
		func(State) bool { return true },
		func(s State) State { return s })
	drv := d.MustBuild()
	c := MustCompose("PQD", p, q, drv)
	next := c.Next(c.Start()[0], "go")
	if len(next) != 4 {
		t.Fatalf("cross product size = %d, want 4", len(next))
	}
	seen := make(map[string]bool)
	for _, s := range next {
		seen[s.Key()] = true
	}
	if len(seen) != 4 {
		t.Errorf("duplicate successors: %v", seen)
	}
}
