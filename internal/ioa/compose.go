package ioa

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// A TupleState is a state of a composition: one component state per
// component automaton, in component order (§2.1.1).
type TupleState struct {
	parts []State
	key   string
}

var _ State = (*TupleState)(nil)

// NewTupleState builds a tuple state from component states.
func NewTupleState(parts []State) *TupleState {
	keys := make([]string, len(parts))
	for i, p := range parts {
		keys[i] = p.Key()
	}
	return &TupleState{parts: append([]State(nil), parts...), key: JoinKeys(keys...)}
}

// Key implements State.
func (t *TupleState) Key() string { return t.key }

// At returns the i-th component state (the paper's a|Aᵢ projection on
// states).
func (t *TupleState) At(i int) State { return t.parts[i] }

// Len returns the number of components.
func (t *TupleState) Len() int { return len(t.parts) }

// newTupleStateOwned builds a tuple state taking ownership of parts
// (no defensive copy — callers must not retain the slice).
func newTupleStateOwned(parts []State) *TupleState {
	keys := make([]string, len(parts))
	for i, p := range parts {
		keys[i] = p.Key()
	}
	return &TupleState{parts: parts, key: JoinKeys(keys...)}
}

// with returns a copy of t with component i replaced by s.
func (t *TupleState) with(updates map[int]State) *TupleState {
	parts := append([]State(nil), t.parts...)
	for i, s := range updates {
		parts[i] = s
	}
	return newTupleStateOwned(parts)
}

// with1 returns a copy of t with only component i replaced — the
// single-owner fast path of composite steps.
func (t *TupleState) with1(i int, s State) *TupleState {
	parts := append([]State(nil), t.parts...)
	parts[i] = s
	return newTupleStateOwned(parts)
}

// A Composite is the composition A = ∏ᵢAᵢ of compatible automata
// (§2.1.1). Components synchronize on shared actions: when the
// composition performs π, every component with π in its signature
// performs π and every other component does not change state. The
// partition of the composition is the union of the components'
// partitions, with class names qualified by the component name.
type Composite struct {
	name  string
	comps []Automaton
	sig   Signature
	parts []Class
	// who[a] lists the indices of components having action a.
	who map[Action][]int
	// classOwner[i] is the component index owning composite class i.
	classOwner []int
	// memo caches per-component transition and enabled-set results
	// (one cache per component). Sound because Automaton requires
	// Next/Enabled to be deterministic functions of their arguments;
	// safe for concurrent exploration because each cache is sharded
	// behind RW mutexes.
	memo   []compMemo
	memoOn bool
	// obsMemo, when non-nil, counts cache hits and misses. Writes are
	// sharded by the memo hash, so concurrent workers touching
	// different shards also touch different counter stripes.
	obsMemo *obs.MemoMetrics
}

// memoShardCount shards each component cache to keep lock contention
// low under parallel exploration.
const memoShardCount = 16

// compMemo is one component's transition/enabled cache.
type compMemo struct {
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu sync.RWMutex
	// next maps a component state key to its per-action successor
	// lists (a present entry means "computed", even when empty).
	next map[string]map[Action][]State
	// enabled maps a component state key to the component's enabled
	// locally-controlled actions, cached verbatim.
	enabled map[string][]Action
	// hasEnabled marks enabled-cache presence (the cached slice may
	// legitimately be nil).
	hasEnabled map[string]struct{}
}

// memoHash assigns a state key to a cache shard (FNV-1a over the last
// 32 bytes — structured keys share long prefixes, so the tail carries
// the entropy and bounding the scan keeps hashing O(1) on big states).
func memoHash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	start := 0
	if len(key) > 32 {
		start = len(key) - 32
	}
	h := uint32(offset32)
	for i := start; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

var _ Automaton = (*Composite)(nil)

// Compose forms the composition of the given automata, which must be
// compatible (§2.1.1). At least one component is required.
func Compose(name string, comps ...Automaton) (*Composite, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("ioa: compose %s: no components", name)
	}
	sigs := make([]Signature, len(comps))
	for i, c := range comps {
		sigs[i] = c.Sig()
	}
	sig, err := ComposeSignatures(sigs...)
	if err != nil {
		return nil, fmt.Errorf("ioa: compose %s: %w", name, err)
	}
	who := make(map[Action][]int)
	for i, c := range comps {
		for a := range c.Sig().Acts() {
			who[a] = append(who[a], i)
		}
	}
	var parts []Class
	var owner []int
	for i, c := range comps {
		for _, cl := range c.Parts() {
			parts = append(parts, Class{
				Name:    c.Name() + "/" + cl.Name,
				Actions: cl.Actions.Clone(),
			})
			owner = append(owner, i)
		}
	}
	return &Composite{
		name: name, comps: comps, sig: sig, parts: parts, who: who, classOwner: owner,
		memo: make([]compMemo, len(comps)), memoOn: true,
	}, nil
}

// SetMemo turns the per-component transition/enabled caches on or off
// (on by default). Off reproduces the uncached seed behavior, e.g.
// for benchmarking the cache itself. Not safe to toggle while other
// goroutines are stepping the composite.
func (c *Composite) SetMemo(on bool) { c.memoOn = on }

// SetObs attaches (or, with nil, detaches) memo-cache metrics.
// Observability never changes stepping behavior — only hit/miss
// counters. Not safe to toggle while other goroutines are stepping
// the composite.
func (c *Composite) SetObs(o *obs.Obs) {
	if o == nil {
		c.obsMemo = nil
		return
	}
	c.obsMemo = o.Memo
}

// SetObsDeep applies SetObs to every Composite in the automaton tree,
// descending through Hide/Rename wrappers and nested compositions —
// the same traversal as SetMemoDeep, and the one CLI entry points use
// to instrument a closed system in one call.
func SetObsDeep(a Automaton, o *obs.Obs) {
	switch w := a.(type) {
	case *Composite:
		w.SetObs(o)
		for _, comp := range w.comps {
			SetObsDeep(comp, o)
		}
	case *hidden:
		SetObsDeep(w.inner, o)
	case *Renamed:
		SetObsDeep(w.inner, o)
	default:
		// Extension point for wrappers defined outside this package
		// (e.g. the faults crash wrapper): they implement SetObs and
		// recurse into their inner automaton themselves.
		if x, ok := a.(interface{ SetObs(*obs.Obs) }); ok {
			x.SetObs(o)
		}
	}
}

// SetMemoDeep applies SetMemo to every Composite in the automaton
// tree, descending through Hide/Rename wrappers and nested
// compositions. Needed to benchmark a fully uncached system: a closed
// system is a composition whose arbiter component is itself a
// (renamed, hidden) composition with its own caches.
func SetMemoDeep(a Automaton, on bool) {
	switch w := a.(type) {
	case *Composite:
		w.SetMemo(on)
		for _, c := range w.comps {
			SetMemoDeep(c, on)
		}
	case *hidden:
		SetMemoDeep(w.inner, on)
	case *Renamed:
		SetMemoDeep(w.inner, on)
	}
}

// compNext is comp[i].Next(s, a) through the memo layer.
func (c *Composite) compNext(i int, s State, a Action) []State {
	if !c.memoOn {
		return c.comps[i].Next(s, a)
	}
	key := s.Key()
	h := memoHash(key)
	sh := &c.memo[i].shards[h%memoShardCount]
	sh.mu.RLock()
	if row, ok := sh.next[key]; ok {
		if out, ok := row[a]; ok {
			sh.mu.RUnlock()
			if m := c.obsMemo; m != nil {
				m.NextHit.AddShard(int(h), 1)
			}
			return out
		}
	}
	sh.mu.RUnlock()
	if m := c.obsMemo; m != nil {
		m.NextMiss.AddShard(int(h), 1)
	}
	out := c.comps[i].Next(s, a)
	sh.mu.Lock()
	if sh.next == nil {
		sh.next = make(map[string]map[Action][]State)
	}
	row, ok := sh.next[key]
	if !ok {
		row = make(map[Action][]State)
		sh.next[key] = row
	}
	row[a] = out
	sh.mu.Unlock()
	return out
}

// compEnabled is comp[i].Enabled(s) through the memo layer. The
// component's result is cached verbatim (same actions, same order),
// so callers observe exactly the uncached behavior.
func (c *Composite) compEnabled(i int, s State) []Action {
	if !c.memoOn {
		return c.comps[i].Enabled(s)
	}
	key := s.Key()
	h := memoHash(key)
	sh := &c.memo[i].shards[h%memoShardCount]
	sh.mu.RLock()
	if _, ok := sh.hasEnabled[key]; ok {
		out := sh.enabled[key]
		sh.mu.RUnlock()
		if m := c.obsMemo; m != nil {
			m.EnabledHit.AddShard(int(h), 1)
		}
		return out
	}
	sh.mu.RUnlock()
	if m := c.obsMemo; m != nil {
		m.EnabledMiss.AddShard(int(h), 1)
	}
	out := c.comps[i].Enabled(s)
	sh.mu.Lock()
	if sh.enabled == nil {
		sh.enabled = make(map[string][]Action)
		sh.hasEnabled = make(map[string]struct{})
	}
	sh.enabled[key] = out
	sh.hasEnabled[key] = struct{}{}
	sh.mu.Unlock()
	return out
}

// MustCompose is Compose but panics on error.
func MustCompose(name string, comps ...Automaton) *Composite {
	c, err := Compose(name, comps...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Automaton.
func (c *Composite) Name() string { return c.name }

// Sig implements Automaton.
func (c *Composite) Sig() Signature { return c.sig }

// Components returns the component automata (do not mutate).
func (c *Composite) Components() []Automaton { return c.comps }

// Start implements Automaton: the Cartesian product of component start
// states.
func (c *Composite) Start() []State {
	combos := [][]State{nil}
	for _, comp := range c.comps {
		starts := comp.Start()
		next := make([][]State, 0, len(combos)*len(starts))
		for _, prefix := range combos {
			for _, s := range starts {
				row := append(append([]State(nil), prefix...), s)
				next = append(next, row)
			}
		}
		combos = next
	}
	out := make([]State, 0, len(combos))
	for _, row := range combos {
		out = append(out, NewTupleState(row))
	}
	return out
}

// Next implements Automaton: all components sharing the action step
// simultaneously; others are unchanged.
func (c *Composite) Next(s State, a Action) []State {
	ts, ok := s.(*TupleState)
	if !ok || ts.Len() != len(c.comps) {
		return nil
	}
	owners := c.who[a]
	if len(owners) == 0 {
		return nil
	}
	// Single-owner fast path: no cross product, no update maps. This
	// is the common case (every non-shared action) and the hot path
	// of exhaustive exploration.
	if len(owners) == 1 {
		i := owners[0]
		next := c.compNext(i, ts.At(i), a)
		if len(next) == 0 {
			return nil
		}
		out := make([]State, len(next))
		for k, nxt := range next {
			out[k] = ts.with1(i, nxt)
		}
		return out
	}
	// Per-owner successor lists; if any owner cannot step, the
	// composite cannot step.
	choices := make([][]State, len(owners))
	for k, i := range owners {
		next := c.compNext(i, ts.At(i), a)
		if len(next) == 0 {
			return nil
		}
		choices[k] = next
	}
	// Cross product of owner choices.
	results := []map[int]State{{}}
	for k, i := range owners {
		var expanded []map[int]State
		for _, partial := range results {
			for _, nxt := range choices[k] {
				m := make(map[int]State, len(partial)+1)
				for idx, st := range partial {
					m[idx] = st
				}
				m[i] = nxt
				expanded = append(expanded, m)
			}
		}
		results = expanded
	}
	out := make([]State, 0, len(results))
	for _, updates := range results {
		out = append(out, ts.with(updates))
	}
	return out
}

// Enabled implements Automaton. By Corollary 3 of the paper, a
// locally-controlled action of component i is enabled in the
// composition iff it is enabled in component i (all other components
// see it as an input, which is always enabled).
func (c *Composite) Enabled(s State) []Action {
	ts, ok := s.(*TupleState)
	if !ok {
		return nil
	}
	var out []Action
	for i := range c.comps {
		out = append(out, c.compEnabled(i, ts.At(i))...)
	}
	return out
}

// Parts implements Automaton.
func (c *Composite) Parts() []Class { return c.parts }

// ProjectExecution computes x|Aᵢ (Lemma 1): the execution of component
// i induced by an execution x of the composition, obtained by deleting
// steps whose action is not an action of Aᵢ and projecting states.
func (c *Composite) ProjectExecution(x *Execution, i int) (*Execution, error) {
	if i < 0 || i >= len(c.comps) {
		return nil, fmt.Errorf("ioa: component index %d out of range", i)
	}
	comp := c.comps[i]
	acts := comp.Sig().Acts()
	first, ok := x.States[0].(*TupleState)
	if !ok {
		return nil, fmt.Errorf("ioa: execution state is not a tuple state")
	}
	proj := &Execution{Auto: comp, States: []State{first.At(i)}}
	for k, a := range x.Acts {
		if !acts.Has(a) {
			continue
		}
		ts, ok := x.States[k+1].(*TupleState)
		if !ok {
			return nil, fmt.Errorf("ioa: execution state is not a tuple state")
		}
		proj.Acts = append(proj.Acts, a)
		proj.States = append(proj.States, ts.At(i))
	}
	return proj, nil
}
