package ioa

// An Encoder is an optional fast path for State implementations: a
// state that can append a canonical binary encoding of itself to a
// caller-supplied buffer avoids the string round trip that Key()
// implies on hot paths (interning, hashing, dedup maps).
//
// Contract: the encoding must identify the state exactly as Key()
// does — two states of the same automaton have equal encodings if and
// only if their Keys are equal. The simplest correct implementation
// appends the Key bytes (free when the key is cached at construction
// time, as TupleState and the faults states do); richer encodings are
// legal as long as the equivalence holds, and the property battery in
// internal/store asserts it over composed, hidden, renamed, and
// fault-wrapped automata.
type Encoder interface {
	// AppendBinary appends the state's canonical encoding to dst and
	// returns the extended slice (the append idiom: dst's backing
	// array is reused when capacity allows).
	AppendBinary(dst []byte) []byte
}

// AppendState appends s's canonical encoding to dst: the Encoder fast
// path when the state implements it, otherwise the Key() bytes. The
// fallback and the fast path agree for every Encoder in this
// repository (all append exactly the Key bytes), so a single store
// may intern a mix of encoder and non-encoder states.
func AppendState(dst []byte, s State) []byte {
	if e, ok := s.(Encoder); ok {
		return e.AppendBinary(dst)
	}
	return append(dst, s.Key()...)
}

// AppendBinary implements Encoder: the key bytes.
func (s KeyState) AppendBinary(dst []byte) []byte { return append(dst, s...) }

var _ Encoder = KeyState("")

// AppendBinary implements Encoder: the cached composite key, computed
// once when the tuple state was built.
func (t *TupleState) AppendBinary(dst []byte) []byte { return append(dst, t.key...) }

var _ Encoder = (*TupleState)(nil)
