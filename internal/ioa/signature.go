package ioa

import (
	"errors"
	"fmt"
)

// A Signature is an action signature (in, out, int): three disjoint
// sets of input, output, and internal actions (paper §2.1).
type Signature struct {
	in       Set
	out      Set
	internal Set
}

// NewSignature builds a signature from the three action sets, which
// must be pairwise disjoint. The slices are copied.
func NewSignature(in, out, internal []Action) (Signature, error) {
	sig := Signature{in: NewSet(in...), out: NewSet(out...), internal: NewSet(internal...)}
	if err := sig.validate(); err != nil {
		return Signature{}, err
	}
	return sig, nil
}

// MustSignature is NewSignature but panics on error; for use with
// statically known signatures.
func MustSignature(in, out, internal []Action) Signature {
	sig, err := NewSignature(in, out, internal)
	if err != nil {
		panic(err)
	}
	return sig
}

func (s Signature) validate() error {
	for a := range s.in {
		if s.out.Has(a) || s.internal.Has(a) {
			return dupErr(a, "appears in more than one signature component")
		}
	}
	for a := range s.out {
		if s.internal.Has(a) {
			return dupErr(a, "appears in more than one signature component")
		}
	}
	return nil
}

// Inputs returns a copy of in(S).
func (s Signature) Inputs() Set { return s.in.Clone() }

// Outputs returns a copy of out(S).
func (s Signature) Outputs() Set { return s.out.Clone() }

// Internals returns a copy of int(S).
func (s Signature) Internals() Set { return s.internal.Clone() }

// Acts returns acts(S) = in ∪ out ∪ int.
func (s Signature) Acts() Set { return s.in.Union(s.out).Union(s.internal) }

// Ext returns ext(S) = in ∪ out, the external actions.
func (s Signature) Ext() Set { return s.in.Union(s.out) }

// Local returns local(S) = out ∪ int, the locally-controlled actions.
func (s Signature) Local() Set { return s.out.Union(s.internal) }

// IsInput reports whether a ∈ in(S).
func (s Signature) IsInput(a Action) bool { return s.in.Has(a) }

// IsOutput reports whether a ∈ out(S).
func (s Signature) IsOutput(a Action) bool { return s.out.Has(a) }

// IsInternal reports whether a ∈ int(S).
func (s Signature) IsInternal(a Action) bool { return s.internal.Has(a) }

// IsExternal reports whether a ∈ ext(S).
func (s Signature) IsExternal(a Action) bool { return s.in.Has(a) || s.out.Has(a) }

// IsLocal reports whether a ∈ local(S).
func (s Signature) IsLocal(a Action) bool { return s.out.Has(a) || s.internal.Has(a) }

// HasAction reports whether a ∈ acts(S).
func (s Signature) HasAction(a Action) bool {
	return s.in.Has(a) || s.out.Has(a) || s.internal.Has(a)
}

// External returns the external action signature of S: the signature
// obtained by removing the internal actions (paper §2.1).
func (s Signature) External() Signature {
	return Signature{in: s.in.Clone(), out: s.out.Clone(), internal: make(Set)}
}

// Equal reports whether two signatures have identical components.
func (s Signature) Equal(t Signature) bool {
	return setEqual(s.in, t.in) && setEqual(s.out, t.out) && setEqual(s.internal, t.internal)
}

func setEqual(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b.Has(x) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s Signature) String() string {
	return fmt.Sprintf("(in=%v, out=%v, int=%v)", s.in, s.out, s.internal)
}

// ErrIncompatible is returned when a collection of signatures (or
// objects) violates the compatibility conditions of §2.1.1.
var ErrIncompatible = errors.New("ioa: incompatible action signatures")

// Compatible checks the compatibility conditions of §2.1.1 for the
// given signatures: output sets pairwise disjoint, and each signature's
// internal actions disjoint from every other signature's actions.
// It returns a descriptive error wrapping ErrIncompatible on violation.
func Compatible(sigs ...Signature) error {
	for i := range sigs {
		for j := range sigs {
			if i == j {
				continue
			}
			if i < j && !sigs[i].out.Disjoint(sigs[j].out) {
				shared := sigs[i].out.Intersect(sigs[j].out)
				return fmt.Errorf("%w: shared output actions %v (components %d, %d)",
					ErrIncompatible, shared, i, j)
			}
			if !sigs[i].internal.Disjoint(sigs[j].Acts()) {
				shared := sigs[i].internal.Intersect(sigs[j].Acts())
				return fmt.Errorf("%w: internal actions %v of component %d appear in component %d",
					ErrIncompatible, shared, i, j)
			}
		}
	}
	return nil
}

// ComposeSignatures forms the composition ∏ᵢSᵢ of compatible
// signatures (§2.1.1):
//
//	in(S)  = ⋃ in(Sᵢ) − ⋃ out(Sᵢ)
//	out(S) = ⋃ out(Sᵢ)
//	int(S) = ⋃ int(Sᵢ)
func ComposeSignatures(sigs ...Signature) (Signature, error) {
	if err := Compatible(sigs...); err != nil {
		return Signature{}, err
	}
	in, out, internal := make(Set), make(Set), make(Set)
	for _, s := range sigs {
		for a := range s.in {
			in[a] = struct{}{}
		}
		for a := range s.out {
			out[a] = struct{}{}
		}
		for a := range s.internal {
			internal[a] = struct{}{}
		}
	}
	for a := range out {
		delete(in, a)
	}
	return Signature{in: in, out: out, internal: internal}, nil
}

// HideSignature moves the actions of hide that occur in s from the
// external components into the internal component (§2.1.2):
//
//	in(Hide_Σ(S))  = in(S) − Σ
//	out(Hide_Σ(S)) = out(S) − Σ
//	int(Hide_Σ(S)) = int(S) ∪ (acts(S) ∩ Σ)
func HideSignature(s Signature, hide Set) Signature {
	return Signature{
		in:       s.in.Minus(hide),
		out:      s.out.Minus(hide),
		internal: s.internal.Union(s.Acts().Intersect(hide)),
	}
}
