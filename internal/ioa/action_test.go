package ioa

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/testseed"
)

func TestActParams(t *testing.T) {
	tests := []struct {
		name   string
		act    Action
		base   string
		params []string
	}{
		{name: "bare", act: Act("grant"), base: "grant", params: nil},
		{name: "one", act: Act("grant", "u1"), base: "grant", params: []string{"u1"}},
		{name: "two", act: Act("request", "a1", "a2"), base: "request", params: []string{"a1", "a2"}},
		{name: "literal", act: Action("poll(3)"), base: "poll", params: []string{"3"}},
		{name: "empty-parens", act: Action("x()"), base: "x", params: nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.act.Base(); got != tc.base {
				t.Errorf("Base() = %q, want %q", got, tc.base)
			}
			if got := tc.act.Params(); !reflect.DeepEqual(got, tc.params) {
				t.Errorf("Params() = %v, want %v", got, tc.params)
			}
		})
	}
}

func TestActRoundTrip(t *testing.T) {
	a := Act("send", "x", "y")
	if a != Action("send(x,y)") {
		t.Fatalf("Act built %q", a)
	}
	if Act(a.Base(), a.Params()...) != a {
		t.Errorf("Base/Params round trip failed for %q", a)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet("a", "b", "c")
	u := NewSet("b", "d")
	if got := s.Union(u); got.Len() != 4 || !got.Has("d") {
		t.Errorf("Union = %v", got)
	}
	if got := s.Intersect(u); got.Len() != 1 || !got.Has("b") {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Minus(u); got.Len() != 2 || got.Has("b") {
		t.Errorf("Minus = %v", got)
	}
	if s.Disjoint(u) {
		t.Error("Disjoint should be false: share b")
	}
	if !s.Disjoint(NewSet("x", "y")) {
		t.Error("Disjoint should be true")
	}
	if got := s.Sorted(); !reflect.DeepEqual(got, []Action{"a", "b", "c"}) {
		t.Errorf("Sorted = %v", got)
	}
}

func TestSetCloneIsIndependent(t *testing.T) {
	s := NewSet("a")
	c := s.Clone()
	c.Add("b")
	if s.Has("b") {
		t.Error("Clone shares storage with original")
	}
}

func TestSetProject(t *testing.T) {
	s := NewSet("a", "c")
	seq := []Action{"a", "b", "c", "a", "d"}
	want := []Action{"a", "c", "a"}
	if got := s.Project(seq); !reflect.DeepEqual(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	if got := s.Project(nil); got != nil {
		t.Errorf("Project(nil) = %v, want nil", got)
	}
}

func TestTraceString(t *testing.T) {
	if got := TraceString(nil); got != "ε" {
		t.Errorf("empty trace = %q", got)
	}
	if got := TraceString([]Action{"a", "b"}); got != "a b" {
		t.Errorf("trace = %q", got)
	}
}

// Property: union is commutative and associative; Minus then Union
// with the intersection restores nothing beyond the original.
func TestSetAlgebraProperties(t *testing.T) {
	mk := func(xs []uint8) Set {
		s := make(Set)
		for _, x := range xs {
			s.Add(Action(string(rune('a' + x%8))))
		}
		return s
	}
	commutes := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).String() == b.Union(a).String()
	}
	if err := quick.Check(commutes, testseed.Quick(t, 0)); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	assoc := func(xs, ys, zs []uint8) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		return a.Union(b.Union(c)).String() == a.Union(b).Union(c).String()
	}
	if err := quick.Check(assoc, testseed.Quick(t, 0)); err != nil {
		t.Errorf("union not associative: %v", err)
	}
	partition := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		// a = (a minus b) ∪ (a ∩ b)
		return a.Minus(b).Union(a.Intersect(b)).String() == a.String()
	}
	if err := quick.Check(partition, testseed.Quick(t, 0)); err != nil {
		t.Errorf("minus/intersect do not partition: %v", err)
	}
}

func TestSortedIsStableUnderInsertionOrder(t *testing.T) {
	a := NewSet("c", "a", "b")
	b := NewSet("b", "c", "a")
	ga, gb := a.Sorted(), b.Sorted()
	if !reflect.DeepEqual(ga, gb) {
		t.Errorf("sorted order differs: %v vs %v", ga, gb)
	}
	if !sort.SliceIsSorted(ga, func(i, j int) bool { return ga[i] < ga[j] }) {
		t.Errorf("not sorted: %v", ga)
	}
}
