package ioa

import (
	"fmt"
	"sort"
)

// kind classifies an action within a definition.
type kind int

const (
	kindInput kind = iota + 1
	kindOutput
	kindInternal
)

// transition is the definition of one action's transition relation in
// precondition/effect style (the notation of Figure 3.1).
type transition struct {
	kind kind
	// next returns all successors of s via this action; empty means
	// the action is not enabled from s. For inputs, an empty result is
	// interpreted as "ignore the input" and replaced by a self-loop,
	// preserving input-enabledness.
	next func(State) []State
	// class names the fairness class for locally-controlled actions.
	class string
}

// A Def accumulates the definition of an automaton in the
// precondition/effect style of the paper's figures, then Builds an
// immutable Automaton. The zero value is not usable; create with NewDef.
type Def struct {
	name   string
	start  []State
	trans  map[Action]*transition
	order  []Action // definition order, for stable iteration
	errs   []error
	sealed bool
}

// NewDef starts the definition of an automaton with the given name.
func NewDef(name string) *Def {
	return &Def{name: name, trans: make(map[Action]*transition)}
}

// Start adds start states.
func (d *Def) Start(states ...State) *Def {
	d.start = append(d.start, states...)
	return d
}

// add registers one action definition.
func (d *Def) add(a Action, t *transition) {
	if _, dup := d.trans[a]; dup {
		d.errs = append(d.errs, fmt.Errorf("ioa: %s: duplicate definition of action %q", d.name, a))
		return
	}
	d.trans[a] = t
	d.order = append(d.order, a)
}

// Input defines an input action with a deterministic effect. The
// effect function must be total; return the argument unchanged to
// ignore the input in a given state.
func (d *Def) Input(a Action, eff func(State) State) *Def {
	d.add(a, &transition{kind: kindInput, next: func(s State) []State { return []State{eff(s)} }})
	return d
}

// InputND defines an input action with a nondeterministic effect. If
// next returns no successors for some state, a self-loop is supplied
// so the automaton remains input-enabled.
func (d *Def) InputND(a Action, next func(State) []State) *Def {
	d.add(a, &transition{kind: kindInput, next: next})
	return d
}

// Output defines an output action with a precondition and a
// deterministic effect, as in the paper's action tables.
func (d *Def) Output(a Action, class string, pre func(State) bool, eff func(State) State) *Def {
	d.add(a, &transition{kind: kindOutput, class: class, next: guarded(pre, eff)})
	return d
}

// OutputND defines an output action with an arbitrary transition
// function: empty result means "not enabled".
func (d *Def) OutputND(a Action, class string, next func(State) []State) *Def {
	d.add(a, &transition{kind: kindOutput, class: class, next: next})
	return d
}

// Internal defines an internal action with a precondition and a
// deterministic effect.
func (d *Def) Internal(a Action, class string, pre func(State) bool, eff func(State) State) *Def {
	d.add(a, &transition{kind: kindInternal, class: class, next: guarded(pre, eff)})
	return d
}

// InternalND defines an internal action with an arbitrary transition
// function: empty result means "not enabled".
func (d *Def) InternalND(a Action, class string, next func(State) []State) *Def {
	d.add(a, &transition{kind: kindInternal, class: class, next: next})
	return d
}

func guarded(pre func(State) bool, eff func(State) State) func(State) []State {
	return func(s State) []State {
		if !pre(s) {
			return nil
		}
		return []State{eff(s)}
	}
}

// Build finalizes the definition into an immutable Automaton. It
// returns an error if the definition is inconsistent (duplicate
// actions, empty start set, signature violations).
func (d *Def) Build() (*Prog, error) {
	if d.sealed {
		return nil, fmt.Errorf("ioa: %s: Build called twice", d.name)
	}
	d.sealed = true
	if len(d.errs) > 0 {
		return nil, d.errs[0]
	}
	if len(d.start) == 0 {
		return nil, fmt.Errorf("ioa: %s: no start states", d.name)
	}
	var in, out, internal []Action
	classActs := make(map[string]Set)
	var classOrder []string
	for _, a := range d.order {
		t := d.trans[a]
		switch t.kind {
		case kindInput:
			in = append(in, a)
		case kindOutput, kindInternal:
			if t.kind == kindOutput {
				out = append(out, a)
			} else {
				internal = append(internal, a)
			}
			if _, ok := classActs[t.class]; !ok {
				classActs[t.class] = make(Set)
				classOrder = append(classOrder, t.class)
			}
			classActs[t.class].Add(a)
		}
	}
	sig, err := NewSignature(in, out, internal)
	if err != nil {
		return nil, fmt.Errorf("ioa: %s: %w", d.name, err)
	}
	parts := make([]Class, 0, len(classOrder))
	for _, name := range classOrder {
		parts = append(parts, Class{Name: name, Actions: classActs[name]})
	}
	p := &Prog{
		name:  d.name,
		sig:   sig,
		start: append([]State(nil), d.start...),
		trans: d.trans,
		parts: parts,
	}
	// Precompute sorted local action list for Enabled.
	p.local = sig.Local().Sorted()
	return p, nil
}

// MustBuild is Build but panics on error; for statically correct
// definitions.
func (d *Def) MustBuild() *Prog {
	p, err := d.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// A Prog is an automaton defined in precondition/effect style via Def.
// It implements Automaton.
type Prog struct {
	name  string
	sig   Signature
	start []State
	trans map[Action]*transition
	parts []Class
	local []Action
}

var _ Automaton = (*Prog)(nil)

// Name implements Automaton.
func (p *Prog) Name() string { return p.name }

// Sig implements Automaton.
func (p *Prog) Sig() Signature { return p.sig }

// Start implements Automaton.
func (p *Prog) Start() []State { return append([]State(nil), p.start...) }

// Next implements Automaton. For input actions with no defined
// successor it returns a self-loop, keeping the automaton
// input-enabled (the convention of §3.1.2: unexpected inputs are
// "effectively ignored").
func (p *Prog) Next(s State, a Action) []State {
	t, ok := p.trans[a]
	if !ok {
		return nil
	}
	next := t.next(s)
	if len(next) == 0 && t.kind == kindInput {
		return []State{s}
	}
	return next
}

// Enabled implements Automaton.
func (p *Prog) Enabled(s State) []Action {
	var out []Action
	for _, a := range p.local {
		if len(p.trans[a].next(s)) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// Parts implements Automaton.
func (p *Prog) Parts() []Class { return p.parts }

// Relabel returns a copy of p whose fairness partition is replaced by
// the given function's class names: every locally-controlled action π
// is placed in the class named classOf(π). This is used to refine a
// partition (e.g. one class per action for timed b-bounded analysis,
// §3.4) — any refinement of a valid partition is itself valid.
func (p *Prog) Relabel(classOf func(Action) string) *Prog {
	classActs := make(map[string]Set)
	var order []string
	for _, a := range p.local {
		name := classOf(a)
		if _, ok := classActs[name]; !ok {
			classActs[name] = make(Set)
			order = append(order, name)
		}
		classActs[name].Add(a)
	}
	sort.Strings(order)
	parts := make([]Class, 0, len(order))
	for _, name := range order {
		parts = append(parts, Class{Name: name, Actions: classActs[name]})
	}
	clone := *p
	clone.parts = parts
	return &clone
}
