package ioa_test

import (
	"fmt"

	"repro/internal/ioa"
)

// ExampleCompose builds the Figure 2.1 system: two automata that
// synchronize on each other's outputs, so the composition alternates
// α and β forever.
func ExampleCompose() {
	sigA := ioa.MustSignature([]ioa.Action{"β"}, []ioa.Action{"α"}, nil)
	a := ioa.MustTable("A", sigA,
		[]ioa.State{ioa.KeyState("a0")},
		[]ioa.Step{
			{From: ioa.KeyState("a0"), Act: "α", To: ioa.KeyState("a1")},
			{From: ioa.KeyState("a1"), Act: "β", To: ioa.KeyState("a0")},
		},
		[]ioa.Class{{Name: "A", Actions: ioa.NewSet("α")}})
	sigB := ioa.MustSignature([]ioa.Action{"α"}, []ioa.Action{"β"}, nil)
	b := ioa.MustTable("B", sigB,
		[]ioa.State{ioa.KeyState("b0")},
		[]ioa.Step{
			{From: ioa.KeyState("b0"), Act: "α", To: ioa.KeyState("b1")},
			{From: ioa.KeyState("b1"), Act: "β", To: ioa.KeyState("b0")},
		},
		[]ioa.Class{{Name: "B", Actions: ioa.NewSet("β")}})

	c := ioa.MustCompose("A·B", a, b)
	x := ioa.NewExecution(c, c.Start()[0])
	for i := 0; i < 4; i++ {
		enabled := c.Enabled(x.Last())
		if err := x.Extend(enabled[0], 0); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println(ioa.TraceString(x.Schedule()))
	// Output: α β α β
}

// ExampleHide moves an action out of external view: the behavior of
// the hidden automaton no longer mentions it.
func ExampleHide() {
	sig := ioa.MustSignature(nil, []ioa.Action{"work", "done"}, nil)
	a := ioa.MustTable("W", sig,
		[]ioa.State{ioa.KeyState("0")},
		[]ioa.Step{
			{From: ioa.KeyState("0"), Act: "work", To: ioa.KeyState("1")},
			{From: ioa.KeyState("1"), Act: "done", To: ioa.KeyState("2")},
		},
		[]ioa.Class{{Name: "w", Actions: ioa.NewSet("work", "done")}})
	h := ioa.Hide(a, ioa.NewSet("work"))

	x := ioa.NewExecution(h, h.Start()[0])
	_ = x.Extend("work", 0)
	_ = x.Extend("done", 0)
	fmt.Println("schedule:", ioa.TraceString(x.Schedule()))
	fmt.Println("behavior:", ioa.TraceString(x.Behavior()))
	// Output:
	// schedule: work done
	// behavior: done
}

// ExampleRename applies an injective action mapping, the operation
// used to align A₂'s interface with A₁'s (§3.2.4).
func ExampleRename() {
	sig := ioa.MustSignature(nil, []ioa.Action{ioa.Act("grant", "u0", "a0")}, nil)
	a := ioa.MustTable("G", sig,
		[]ioa.State{ioa.KeyState("0")},
		[]ioa.Step{{From: ioa.KeyState("0"), Act: ioa.Act("grant", "u0", "a0"), To: ioa.KeyState("1")}},
		[]ioa.Class{{Name: "g", Actions: ioa.NewSet(ioa.Act("grant", "u0", "a0"))}})
	f := ioa.MustMapping(map[ioa.Action]ioa.Action{
		ioa.Act("grant", "u0", "a0"): ioa.Act("return", "u0"),
	})
	r := ioa.MustRename(a, f)
	fmt.Println(r.Sig().Outputs())
	// Output: {return(u0)}
}

// ExampleCheckFairWindow demonstrates the fairness discipline: a run
// that starves an enabled class fails the window check.
func ExampleCheckFairWindow() {
	sig := ioa.MustSignature(nil, []ioa.Action{"x", "y"}, nil)
	a := ioa.MustTable("XY", sig,
		[]ioa.State{ioa.KeyState("0")},
		[]ioa.Step{
			{From: ioa.KeyState("0"), Act: "x", To: ioa.KeyState("0")},
			{From: ioa.KeyState("0"), Act: "y", To: ioa.KeyState("0")},
		},
		[]ioa.Class{
			{Name: "cx", Actions: ioa.NewSet("x")},
			{Name: "cy", Actions: ioa.NewSet("y")},
		})
	x := ioa.NewExecution(a, a.Start()[0])
	for i := 0; i < 6; i++ {
		_ = x.Extend("x", 0) // never schedule y
	}
	err := ioa.CheckFairWindow(x, 3)
	fmt.Println(err != nil)
	// Output: true
}
