package ioa

import (
	"errors"
	"testing"
)

func sigOf(t *testing.T, in, out, internal []Action) Signature {
	t.Helper()
	s, err := NewSignature(in, out, internal)
	if err != nil {
		t.Fatalf("NewSignature: %v", err)
	}
	return s
}

func TestSignatureDisjointness(t *testing.T) {
	if _, err := NewSignature([]Action{"a"}, []Action{"a"}, nil); err == nil {
		t.Error("want error for action in both in and out")
	}
	if _, err := NewSignature([]Action{"a"}, nil, []Action{"a"}); err == nil {
		t.Error("want error for action in both in and int")
	}
	if _, err := NewSignature(nil, []Action{"a"}, []Action{"a"}); err == nil {
		t.Error("want error for action in both out and int")
	}
}

func TestSignatureAccessors(t *testing.T) {
	s := sigOf(t, []Action{"i"}, []Action{"o"}, []Action{"h"})
	checks := []struct {
		name string
		got  bool
	}{
		{"IsInput", s.IsInput("i")},
		{"IsOutput", s.IsOutput("o")},
		{"IsInternal", s.IsInternal("h")},
		{"IsExternal(i)", s.IsExternal("i")},
		{"IsExternal(o)", s.IsExternal("o")},
		{"IsLocal(o)", s.IsLocal("o")},
		{"IsLocal(h)", s.IsLocal("h")},
		{"HasAction", s.HasAction("h")},
		{"!IsLocal(i)", !s.IsLocal("i")},
		{"!IsExternal(h)", !s.IsExternal("h")},
		{"!HasAction(z)", !s.HasAction("z")},
	}
	for _, c := range checks {
		if !c.got {
			t.Errorf("%s failed", c.name)
		}
	}
	if s.Ext().Len() != 2 || s.Local().Len() != 2 || s.Acts().Len() != 3 {
		t.Errorf("Ext/Local/Acts sizes wrong: %d %d %d", s.Ext().Len(), s.Local().Len(), s.Acts().Len())
	}
}

func TestSignatureExternal(t *testing.T) {
	s := sigOf(t, []Action{"i"}, []Action{"o"}, []Action{"h"})
	e := s.External()
	if e.Internals().Len() != 0 {
		t.Errorf("External kept internals: %v", e.Internals())
	}
	if !e.IsInput("i") || !e.IsOutput("o") {
		t.Error("External dropped external actions")
	}
}

func TestCompatibleSharedOutput(t *testing.T) {
	a := sigOf(t, nil, []Action{"x"}, nil)
	b := sigOf(t, nil, []Action{"x"}, nil)
	err := Compatible(a, b)
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("want ErrIncompatible for shared output, got %v", err)
	}
}

func TestCompatibleInternalClash(t *testing.T) {
	a := sigOf(t, nil, nil, []Action{"x"})
	b := sigOf(t, []Action{"x"}, nil, nil)
	if err := Compatible(a, b); !errors.Is(err, ErrIncompatible) {
		t.Errorf("want ErrIncompatible for internal/action clash, got %v", err)
	}
	// Symmetric direction must also be caught.
	if err := Compatible(b, a); !errors.Is(err, ErrIncompatible) {
		t.Errorf("want ErrIncompatible (reversed), got %v", err)
	}
}

func TestComposeSignatures(t *testing.T) {
	// A outputs x (input of B), B outputs y (input of A); both hear z.
	a := sigOf(t, []Action{"y", "z"}, []Action{"x"}, []Action{"ha"})
	b := sigOf(t, []Action{"x", "z"}, []Action{"y"}, nil)
	s, err := ComposeSignatures(a, b)
	if err != nil {
		t.Fatalf("ComposeSignatures: %v", err)
	}
	if !s.IsOutput("x") || !s.IsOutput("y") {
		t.Error("outputs of components must be outputs of the composition")
	}
	if s.IsInput("x") || s.IsInput("y") {
		t.Error("satisfied inputs must not remain inputs")
	}
	if !s.IsInput("z") {
		t.Error("unmatched input z must remain an input")
	}
	if !s.IsInternal("ha") {
		t.Error("internal actions are preserved")
	}
}

func TestComposeSignaturesCommutative(t *testing.T) {
	a := sigOf(t, []Action{"y"}, []Action{"x"}, nil)
	b := sigOf(t, []Action{"x"}, []Action{"y"}, nil)
	ab, err := ComposeSignatures(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := ComposeSignatures(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !ab.Equal(ba) {
		t.Errorf("composition not commutative: %v vs %v", ab, ba)
	}
}

func TestHideSignature(t *testing.T) {
	s := sigOf(t, []Action{"i"}, []Action{"o1", "o2"}, []Action{"h"})
	hidden := HideSignature(s, NewSet("o1", "zz"))
	if hidden.IsOutput("o1") {
		t.Error("o1 still an output after hiding")
	}
	if !hidden.IsInternal("o1") {
		t.Error("o1 must become internal")
	}
	if !hidden.IsOutput("o2") || !hidden.IsInput("i") || !hidden.IsInternal("h") {
		t.Error("hiding disturbed unrelated actions")
	}
	if hidden.HasAction("zz") {
		t.Error("hiding must not add actions")
	}
}

func TestSignatureEqual(t *testing.T) {
	a := sigOf(t, []Action{"i"}, []Action{"o"}, nil)
	b := sigOf(t, []Action{"i"}, []Action{"o"}, nil)
	c := sigOf(t, []Action{"i"}, nil, []Action{"o"})
	if !a.Equal(b) {
		t.Error("identical signatures must be equal")
	}
	if a.Equal(c) {
		t.Error("signatures differing in classification must differ")
	}
}
