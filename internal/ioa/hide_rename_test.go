package ioa

import (
	"testing"
)

func hideTestAutomaton(t *testing.T) *Table {
	t.Helper()
	sig := MustSignature([]Action{"in"}, []Action{"mid", "out"}, []Action{"internal"})
	return MustTable("H", sig,
		[]State{KeyState("0")},
		[]Step{
			{From: KeyState("0"), Act: "mid", To: KeyState("1")},
			{From: KeyState("1"), Act: "out", To: KeyState("2")},
			{From: KeyState("2"), Act: "internal", To: KeyState("0")},
			{From: KeyState("0"), Act: "in", To: KeyState("0")},
		},
		[]Class{{Name: "c", Actions: NewSet("mid", "out", "internal")}},
	)
}

func TestHideMovesOutputsToInternal(t *testing.T) {
	a := hideTestAutomaton(t)
	h := Hide(a, NewSet("mid"))
	if h.Sig().IsOutput("mid") || !h.Sig().IsInternal("mid") {
		t.Errorf("mid not hidden: %v", h.Sig())
	}
	if !h.Sig().IsOutput("out") {
		t.Error("out must stay an output")
	}
	// Transitions and partition unchanged.
	if got := h.Next(KeyState("0"), "mid"); len(got) != 1 || got[0].Key() != "1" {
		t.Errorf("hide changed transitions: %v", got)
	}
	if len(h.Parts()) != 1 {
		t.Errorf("hide changed partition: %+v", h.Parts())
	}
	if err := CheckPartition(h); err != nil {
		t.Errorf("partition invalid after hide: %v", err)
	}
}

func TestHideOutputsExcept(t *testing.T) {
	a := hideTestAutomaton(t)
	h := HideOutputsExcept(a, NewSet("out"))
	if h.Sig().IsOutput("mid") || !h.Sig().IsOutput("out") {
		t.Errorf("HideOutputsExcept wrong: %v", h.Sig())
	}
}

func TestHideInputGetsOwnClass(t *testing.T) {
	a := hideTestAutomaton(t)
	h := Hide(a, NewSet("in"))
	if !h.Sig().IsInternal("in") {
		t.Fatalf("in not internal: %v", h.Sig())
	}
	if err := CheckPartition(h); err != nil {
		t.Fatalf("partition must cover newly-local former input: %v", err)
	}
	// The former input is enabled from every state and must be
	// reported by Enabled.
	enabled := NewSet(h.Enabled(KeyState("0"))...)
	if !enabled.Has("in") {
		t.Error("hidden former input must be reported enabled")
	}
}

func TestUnwrap(t *testing.T) {
	a := hideTestAutomaton(t)
	h := Hide(a, NewSet("mid"))
	m := MustMapping(map[Action]Action{"out": "pub"})
	r := MustRename(h, m)
	if Unwrap(r) != Automaton(a) {
		t.Error("Unwrap must reach the base automaton through both wrappers")
	}
}

func TestMappingInjectivity(t *testing.T) {
	if _, err := NewMapping(map[Action]Action{"a": "x", "b": "x"}); err == nil {
		t.Error("non-injective mapping must be rejected")
	}
	// Identity-extension collision: "b" maps to itself, "a" maps onto "b".
	m := MustMapping(map[Action]Action{"a": "b"})
	if err := m.applicable(NewSet("a", "b")); err == nil {
		t.Error("identity-extension collision must be rejected")
	}
	if err := m.applicable(NewSet("a", "c")); err != nil {
		t.Errorf("applicable should pass: %v", err)
	}
}

func TestRenameAutomaton(t *testing.T) {
	a := hideTestAutomaton(t)
	m := MustMapping(map[Action]Action{"out": "publish", "in": "poke"})
	r, err := Rename(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sig().IsOutput("publish") || r.Sig().HasAction("out") {
		t.Errorf("rename wrong: %v", r.Sig())
	}
	if !r.Sig().IsInput("poke") {
		t.Errorf("input rename wrong: %v", r.Sig())
	}
	// Lemma 15-style: executions correspond under the mapping.
	if got := r.Next(KeyState("1"), "publish"); len(got) != 1 || got[0].Key() != "2" {
		t.Errorf("renamed transition broken: %v", got)
	}
	if got := r.Next(KeyState("1"), "out"); got != nil {
		t.Errorf("old name must not fire: %v", got)
	}
	enabled := NewSet(r.Enabled(KeyState("1"))...)
	if !enabled.Has("publish") || enabled.Has("out") {
		t.Errorf("Enabled uses old names: %v", enabled)
	}
	// Partition renamed too.
	if !r.Parts()[0].Actions.Has("publish") {
		t.Errorf("class actions not renamed: %v", r.Parts()[0].Actions)
	}
}

// TestLemma16HideRenameCommute: Hide_f(Σ)(f(O)) = f(Hide_Σ(O)).
func TestLemma16HideRenameCommute(t *testing.T) {
	a := hideTestAutomaton(t)
	m := MustMapping(map[Action]Action{"mid": "m2", "out": "o2"})
	hideSet := NewSet("mid")

	lhs := Hide(MustRename(a, m), NewSet("m2"))
	rhs := MustRename(a, m) // rename first, then compare against rename-of-hidden
	_ = rhs
	rhs2, err := Rename(Hide(a, hideSet), m)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.Sig().Equal(rhs2.Sig()) {
		t.Errorf("Lemma 16 signatures differ:\n  %v\n  %v", lhs.Sig(), rhs2.Sig())
	}
	// Same transitions on a probe.
	l := lhs.Next(KeyState("0"), "m2")
	r := rhs2.Next(KeyState("0"), "m2")
	if len(l) != 1 || len(r) != 1 || l[0].Key() != r[0].Key() {
		t.Errorf("Lemma 16 transitions differ: %v vs %v", l, r)
	}
}

// TestLemma17RenameComposeCommute: (∏fᵢ)(∏Oᵢ) = ∏fᵢ(Oᵢ).
func TestLemma17RenameComposeCommute(t *testing.T) {
	sigA := MustSignature([]Action{"β"}, []Action{"α"}, nil)
	a := MustTable("A", sigA,
		[]State{KeyState("a0")},
		[]Step{
			{From: KeyState("a0"), Act: "α", To: KeyState("a1")},
			{From: KeyState("a1"), Act: "β", To: KeyState("a0")},
		},
		[]Class{{Name: "A", Actions: NewSet("α")}},
	)
	sigB := MustSignature([]Action{"α"}, []Action{"β"}, nil)
	b := MustTable("B", sigB,
		[]State{KeyState("b0")},
		[]Step{
			{From: KeyState("b0"), Act: "α", To: KeyState("b1")},
			{From: KeyState("b1"), Act: "β", To: KeyState("b0")},
		},
		[]Class{{Name: "B", Actions: NewSet("β")}},
	)
	f := MustMapping(map[Action]Action{"α": "ping", "β": "pong"})

	lhs, err := Rename(MustCompose("AB", a, b), f)
	if err != nil {
		t.Fatal(err)
	}
	rhs := MustCompose("AB2", MustRename(a, f), MustRename(b, f))
	if !lhs.Sig().Equal(rhs.Sig()) {
		t.Fatalf("Lemma 17 signatures differ:\n  %v\n  %v", lhs.Sig(), rhs.Sig())
	}
	// Drive both for a few steps and compare behaviors stepwise.
	xl := NewExecution(lhs, lhs.Start()[0])
	xr := NewExecution(rhs, rhs.Start()[0])
	for i := 0; i < 4; i++ {
		el, er := lhs.Enabled(xl.Last()), rhs.Enabled(xr.Last())
		if TraceString(el) != TraceString(er) {
			t.Fatalf("step %d enabled sets differ: %v vs %v", i, el, er)
		}
		if len(el) == 0 {
			break
		}
		if err := xl.Extend(el[0], 0); err != nil {
			t.Fatal(err)
		}
		if err := xr.Extend(er[0], 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestComposeMappings(t *testing.T) {
	f := MustMapping(map[Action]Action{"a": "x"})
	g := MustMapping(map[Action]Action{"b": "y"})
	fg, err := ComposeMappings(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if fg.Apply("a") != "x" || fg.Apply("b") != "y" || fg.Apply("c") != "c" {
		t.Errorf("composed mapping wrong")
	}
	conflict := MustMapping(map[Action]Action{"a": "z"})
	if _, err := ComposeMappings(f, conflict); err == nil {
		t.Error("conflicting mappings must be rejected")
	}
}

func TestChainMappings(t *testing.T) {
	f := MustMapping(map[Action]Action{"raw": "mid"})
	g := MustMapping(map[Action]Action{"mid": "final", "other": "o2"})
	gf, err := ChainMappings(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Apply("raw") != "final" {
		t.Errorf("chain: raw -> %v, want final", gf.Apply("raw"))
	}
	if gf.Apply("other") != "o2" {
		t.Errorf("chain: other -> %v, want o2", gf.Apply("other"))
	}
	// Inversion round-trips.
	if gf.Invert("final") != "raw" {
		t.Errorf("chain inversion: %v", gf.Invert("final"))
	}
}
