package lattice

import (
	"errors"
	"testing"

	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/users"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/sim"
)

func tokenMachine(t *testing.T) *ioa.Prog {
	t.Helper()
	d := ioa.NewDef("token")
	d.Start(ioa.KeyState("idle"))
	d.Input("want", func(ioa.State) ioa.State { return ioa.KeyState("wanting") })
	d.Output("prep", "m",
		func(s ioa.State) bool { return s.Key() == "wanting" },
		func(ioa.State) ioa.State { return ioa.KeyState("ready") })
	d.Output("give", "m",
		func(s ioa.State) bool { return s.Key() == "ready" },
		func(ioa.State) ioa.State { return ioa.KeyState("idle") })
	return d.MustBuild()
}

func stateIs(key string) Label {
	return Label{State: func(s ioa.State) bool { return s.Key() == key }}
}

func actionIs(a ioa.Action) Label {
	return Label{Action: func(act ioa.Action) bool { return act == a }}
}

func TestValidate(t *testing.T) {
	l := New().
		Node("A", stateIs("wanting")).
		Node("B", stateIs("ready")).
		Node("C", actionIs("give")).
		Edge("A", "B").Edge("B", "C")
	entry, exit, err := l.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if entry != "A" || exit != "C" {
		t.Errorf("entry=%s exit=%s", entry, exit)
	}
}

func TestValidateRejects(t *testing.T) {
	cyclic := New().
		Node("A", stateIs("x")).
		Node("B", stateIs("y")).
		Edge("A", "B").Edge("B", "A")
	if _, _, err := cyclic.Validate(); !errors.Is(err, ErrMalformed) {
		t.Error("cycle must be rejected")
	}
	twoEntries := New().
		Node("A", stateIs("x")).
		Node("B", stateIs("y")).
		Node("C", stateIs("z")).
		Edge("A", "C").Edge("B", "C")
	if _, _, err := twoEntries.Validate(); !errors.Is(err, ErrMalformed) {
		t.Error("two entries must be rejected")
	}
	danglingEdge := New().
		Node("A", stateIs("x")).
		Edge("A", "ghost")
	if _, _, err := danglingEdge.Validate(); !errors.Is(err, ErrMalformed) {
		t.Error("edge to unknown node must be rejected")
	}
}

func TestCheckTokenMachine(t *testing.T) {
	a := tokenMachine(t)
	l := New().
		Node("wanting", stateIs("wanting")).
		Node("ready", stateIs("ready")).
		Node("given", actionIs("give")).
		Edge("wanting", "ready").Edge("ready", "given")

	// A complete round discharges everything.
	x := ioa.NewExecution(a, a.Start()[0])
	for _, act := range []ioa.Action{"want", "prep", "give"} {
		if err := x.Extend(act, 0); err != nil {
			t.Fatal(err)
		}
	}
	ok, hard, err := l.Proves(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("complete round must prove wanting ⊃ ◇given: %v", hard)
	}

	// A stalled run leaves the obligation open.
	y := ioa.NewExecution(a, a.Start()[0])
	if err := y.Extend("want", 0); err != nil {
		t.Fatal(err)
	}
	obs, err := l.Check(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Error("stalled run must report an unmet obligation")
	}
	// …but within a tolerant tail the conclusion is merely pending.
	ok, _, err = l.Proves(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("obligation inside the tail window must count as pending")
	}
}

// TestArbiterNoLockoutLattice restates the no-lockout argument of
// Chapter 3 as a proof lattice over A₂ executions: a user's pending
// request leads to the arbiter node holding the resource with the
// request still pending, which leads to the grant. Each edge is
// checked on fair simulated executions.
func TestArbiterNoLockoutLattice(t *testing.T) {
	tr, err := graph.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	holder := 0
	u0 := tr.NodesOf(graph.User)[0]
	a2, err := graphlevel.New(tr, tr.Neighbors(holder)[0], holder)
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := ioa.Rename(a2, graphlevel.F1(tr))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"u0", "u1", "u2"}
	comps := append([]ioa.Automaton{renamed}, users.Automata(users.HeavyLoad(names))...)
	closed, err := ioa.Compose("closed", comps...)
	if err != nil {
		t.Fatal(err)
	}
	x, err := sim.Run(closed, &sim.RoundRobin{}, 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := closed.ProjectExecution(x, 0)
	if err != nil {
		t.Fatal(err)
	}

	requestPending := func(s ioa.State) bool {
		st, ok := s.(*graphlevel.State)
		return ok && st.HasRequest(u0, holder)
	}
	rootWithRequest := func(s ioa.State) bool {
		st, ok := s.(*graphlevel.State)
		return ok && st.HasRequest(u0, holder) && st.Root() == holder
	}
	granted := ioa.Act("grant", "u0")

	l := New().
		Node("u0-requesting", Label{State: requestPending}).
		Node("a0-root-with-request", Label{State: rootWithRequest}).
		Node("u0-granted", Label{Action: func(a ioa.Action) bool { return a == granted }}).
		Edge("u0-requesting", "a0-root-with-request").
		Edge("a0-root-with-request", "u0-granted")

	ok, hard, err := l.Proves(proj, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no-lockout lattice has unmet obligations: %v", hard)
	}
}

// TestBranchingLattice: a diamond-shaped lattice — a node with two
// successors denotes A ⊃ ◇(A₁ ∨ A₂) and is discharged by EITHER
// branch.
func TestBranchingLattice(t *testing.T) {
	d := ioa.NewDef("branch2")
	d.Start(ioa.KeyState("s"))
	d.OutputND("go", "m", func(s ioa.State) []ioa.State {
		if s.Key() != "s" {
			return nil
		}
		return []ioa.State{ioa.KeyState("left"), ioa.KeyState("right")}
	})
	d.Output("fin", "m",
		func(s ioa.State) bool { return s.Key() == "left" || s.Key() == "right" },
		func(ioa.State) ioa.State { return ioa.KeyState("done") })
	a := d.MustBuild()

	l := New().
		Node("start", stateIs("s")).
		Node("L", stateIs("left")).
		Node("R", stateIs("right")).
		Node("end", stateIs("done")).
		Edge("start", "L").Edge("start", "R").
		Edge("L", "end").Edge("R", "end")
	entry, exit, err := l.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if entry != "start" || exit != "end" {
		t.Fatalf("entry=%s exit=%s", entry, exit)
	}
	// Take the left branch: the start obligation is met by L alone.
	x := ioa.NewExecution(a, a.Start()[0])
	if err := x.Extend("go", 0); err != nil { // pick 0 = left
		t.Fatal(err)
	}
	if err := x.Extend("fin", 0); err != nil {
		t.Fatal(err)
	}
	ok, hard, err := l.Proves(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("left-branch run must discharge the diamond: %v", hard)
	}
}
