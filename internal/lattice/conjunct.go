package lattice

// Conjunct lattices organize safety proofs the way proof lattices
// organize liveness proofs: an inductive invariant is rarely the bare
// safety property but a conjunction Inv == TypeOK ∧ I1 ∧ … of named
// lemmas, each a state predicate, strengthened one conjunct at a time
// until the whole becomes closed under transitions. The induct engine
// walks this sub-lattice of the predicate lattice: a
// counterexample-to-induction names the violated conjunct, and the
// strengthening loop conjoins the library lemma that refutes the CTI's
// predecessor.

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
)

// A Lemma is one named conjunct of a candidate invariant.
type Lemma struct {
	// Name identifies the conjunct in CTIs, obligation accounting, and
	// certificates.
	Name string
	// Pred is the state predicate. It must be pure: no mutation of the
	// state argument and no dependence on map order, time, or
	// randomness (the invpure analyzer enforces this).
	Pred func(ioa.State) bool
}

// L builds a lemma.
func L(name string, pred func(ioa.State) bool) Lemma {
	return Lemma{Name: name, Pred: pred}
}

// A Conjunction is an ordered conjunction of lemmas — the candidate
// inductive invariant. The zero value is the empty conjunction (true
// everywhere). Conjunctions are immutable; With derives extensions.
type Conjunction struct {
	name   string
	lemmas []Lemma
}

// Conj builds a named conjunction of lemmas.
func Conj(name string, lemmas ...Lemma) *Conjunction {
	return &Conjunction{name: name, lemmas: append([]Lemma(nil), lemmas...)}
}

// Name returns the conjunction's name.
func (c *Conjunction) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Lemmas returns the conjuncts in order, copied.
func (c *Conjunction) Lemmas() []Lemma {
	if c == nil {
		return nil
	}
	return append([]Lemma(nil), c.lemmas...)
}

// Len returns the conjunct count.
func (c *Conjunction) Len() int {
	if c == nil {
		return 0
	}
	return len(c.lemmas)
}

// Holds reports whether every conjunct holds at s.
func (c *Conjunction) Holds(s ioa.State) bool {
	_, ok := c.FirstViolated(s)
	return !ok
}

// FirstViolated returns the first conjunct (in conjunction order)
// violated at s, if any. Evaluation order is the strengthening order,
// so the reported conjunct is the weakest-known failing obligation.
func (c *Conjunction) FirstViolated(s ioa.State) (Lemma, bool) {
	if c == nil {
		return Lemma{}, false
	}
	for _, l := range c.lemmas {
		if !l.Pred(s) {
			return l, true
		}
	}
	return Lemma{}, false
}

// Has reports whether a conjunct with the given name is present.
func (c *Conjunction) Has(name string) bool {
	if c == nil {
		return false
	}
	for _, l := range c.lemmas {
		if l.Name == name {
			return true
		}
	}
	return false
}

// With returns the conjunction extended by lemma (copy-on-write; the
// receiver is unchanged).
func (c *Conjunction) With(lemma Lemma) *Conjunction {
	out := &Conjunction{}
	if c != nil {
		out.name = c.name
		out.lemmas = append(out.lemmas, c.lemmas...)
	}
	out.lemmas = append(out.lemmas, lemma)
	return out
}

// String renders the conjunction TLAPS-style:
// "Inv == TypeOK ∧ I1 ∧ I2".
func (c *Conjunction) String() string {
	name := c.Name()
	if name == "" {
		name = "Inv"
	}
	if c.Len() == 0 {
		return fmt.Sprintf("%s == TRUE", name)
	}
	parts := make([]string, len(c.lemmas))
	for i, l := range c.lemmas {
		parts[i] = l.Name
	}
	return fmt.Sprintf("%s == %s", name, strings.Join(parts, " ∧ "))
}
