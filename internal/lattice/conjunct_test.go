package lattice

import (
	"testing"

	"repro/internal/ioa"
)

func isKey(k string) Lemma {
	return L(k, func(s ioa.State) bool { return s.Key() == k })
}

func notKey(k string) Lemma {
	return L("not-"+k, func(s ioa.State) bool { return s.Key() != k })
}

func TestConjunction(t *testing.T) {
	c := Conj("Inv", notKey("x"), notKey("y"))
	if c.Len() != 2 || c.Name() != "Inv" {
		t.Fatalf("Len/Name wrong: %s", c)
	}
	if !c.Holds(ioa.KeyState("z")) {
		t.Fatal("z should satisfy")
	}
	if l, bad := c.FirstViolated(ioa.KeyState("y")); !bad || l.Name != "not-y" {
		t.Fatalf("FirstViolated(y) = %v, %v", l.Name, bad)
	}
	// Order matters: the first violated conjunct wins.
	c2 := Conj("Inv", notKey("x"), L("never", func(ioa.State) bool { return false }))
	if l, _ := c2.FirstViolated(ioa.KeyState("x")); l.Name != "not-x" {
		t.Fatalf("want not-x first, got %s", l.Name)
	}
	if got := c.String(); got != "Inv == not-x ∧ not-y" {
		t.Fatalf("String = %q", got)
	}
}

func TestConjunctionWith(t *testing.T) {
	c := Conj("Inv", notKey("x"))
	c2 := c.With(notKey("y"))
	if c.Len() != 1 || c2.Len() != 2 {
		t.Fatal("With must copy, not mutate")
	}
	if !c2.Has("not-y") || c.Has("not-y") {
		t.Fatal("Has wrong")
	}
	if ls := c2.Lemmas(); len(ls) != 2 || ls[1].Name != "not-y" {
		t.Fatalf("Lemmas = %v", ls)
	}
}

func TestConjunctionZero(t *testing.T) {
	var c *Conjunction
	if !c.Holds(ioa.KeyState("x")) || c.Len() != 0 || c.Has("a") {
		t.Fatal("nil conjunction should be TRUE everywhere")
	}
	if got := c.With(notKey("x")).String(); got != "Inv == not-x" {
		t.Fatalf("String = %q", got)
	}
	empty := Conj("Empty")
	if got := empty.String(); got != "Empty == TRUE" {
		t.Fatalf("String = %q", got)
	}
}
