// Package lattice implements proof lattices in the style of Owicki and
// Lamport, which the paper's introduction singles out (with [MP84]) as
// the natural way to organize liveness proofs over an
// automata-theoretic model: an acyclic directed graph with a single
// entry and a single exit whose nodes are labeled with assertions; a
// node A with successors A₁…A_n denotes the temporal assertion
// A ⊃ ◇(A₁ ∨ … ∨ A_n), and a lattice all of whose edge obligations
// hold amounts to a proof of entry ⊃ ◇exit.
//
// Here lattices are checked against (finite prefixes of) executions of
// input-output automata: every moment at which a node's label holds
// must be followed by a moment at which some successor's label holds.
package lattice

import (
	"errors"
	"fmt"

	"repro/internal/ioa"
)

// A Label marks the moments of an execution at which a lattice node is
// "active": either a state predicate, an action predicate, or both
// (active when either fires).
type Label struct {
	// State, if non-nil, activates the node at states satisfying it.
	State func(ioa.State) bool
	// Action, if non-nil, activates the node at occurrences of
	// matching actions.
	Action func(ioa.Action) bool
}

// active reports the node's activity at position i of the execution:
// position i covers state i and (for i > 0) the action of step i-1.
func (l Label) active(x *ioa.Execution, i int) bool {
	if l.State != nil && l.State(x.States[i]) {
		return true
	}
	if l.Action != nil && i > 0 && l.Action(x.Acts[i-1]) {
		return true
	}
	return false
}

// A Lattice is a proof lattice under construction or in use.
type Lattice struct {
	names  []string
	labels map[string]Label
	succ   map[string][]string
}

// New creates an empty lattice.
func New() *Lattice {
	return &Lattice{labels: make(map[string]Label), succ: make(map[string][]string)}
}

// Node adds a labeled node.
func (l *Lattice) Node(name string, label Label) *Lattice {
	if _, dup := l.labels[name]; !dup {
		l.names = append(l.names, name)
	}
	l.labels[name] = label
	return l
}

// Edge records that node from has node to among its successors.
func (l *Lattice) Edge(from, to string) *Lattice {
	l.succ[from] = append(l.succ[from], to)
	return l
}

// ErrMalformed is returned by Validate for structural defects.
var ErrMalformed = errors.New("lattice: malformed proof lattice")

// Validate checks the structural requirements: every edge endpoint is
// a node, the graph is acyclic, and there is exactly one entry node
// (no incoming edges) and one exit node (no outgoing edges).
func (l *Lattice) Validate() (entry, exit string, err error) {
	indeg := make(map[string]int, len(l.names))
	for _, n := range l.names {
		indeg[n] = 0
	}
	for from, tos := range l.succ {
		if _, ok := l.labels[from]; !ok {
			return "", "", fmt.Errorf("%w: edge from unknown node %q", ErrMalformed, from)
		}
		for _, to := range tos {
			if _, ok := l.labels[to]; !ok {
				return "", "", fmt.Errorf("%w: edge to unknown node %q", ErrMalformed, to)
			}
			indeg[to]++
		}
	}
	var entries, exits []string
	for _, n := range l.names {
		if indeg[n] == 0 {
			entries = append(entries, n)
		}
		if len(l.succ[n]) == 0 {
			exits = append(exits, n)
		}
	}
	if len(entries) != 1 {
		return "", "", fmt.Errorf("%w: %d entry nodes %v", ErrMalformed, len(entries), entries)
	}
	if len(exits) != 1 {
		return "", "", fmt.Errorf("%w: %d exit nodes %v", ErrMalformed, len(exits), exits)
	}
	// Kahn's algorithm for acyclicity.
	queue := append([]string(nil), entries...)
	deg := make(map[string]int, len(indeg))
	for k, v := range indeg {
		deg[k] = v
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, to := range l.succ[n] {
			deg[to]--
			if deg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if seen != len(l.names) {
		return "", "", fmt.Errorf("%w: cycle detected", ErrMalformed)
	}
	return entries[0], exits[0], nil
}

// An Obligation is an unmet edge assertion on a finite execution: node
// Node was active at position At with no later successor activity.
type Obligation struct {
	Node string
	At   int
}

// Check evaluates every edge assertion of the lattice on a finite
// execution and returns the unmet obligations. An obligation at
// position i is met if some successor of the node is active at any
// position ≥ i. (Active entry nodes whose whole chain completes
// witness entry ⊃ ◇exit on this prefix; obligations near the end of
// the prefix may be pending rather than false — callers decide via the
// returned positions.)
func (l *Lattice) Check(x *ioa.Execution) ([]Obligation, error) {
	if _, _, err := l.Validate(); err != nil {
		return nil, err
	}
	n := x.Len() + 1
	// lastFrom[name] is precomputed: for each node, the positions at
	// which it is active; for efficiency compute per node a suffix
	// "next active at or after i" table.
	nextActive := make(map[string][]int, len(l.names))
	for _, name := range l.names {
		lab := l.labels[name]
		table := make([]int, n+1)
		table[n] = -1
		for i := n - 1; i >= 0; i-- {
			if lab.active(x, i) {
				table[i] = i
			} else {
				table[i] = table[i+1]
			}
		}
		nextActive[name] = table
	}
	var out []Obligation
	for _, from := range l.names {
		succs := l.succ[from]
		if len(succs) == 0 {
			continue
		}
		lab := l.labels[from]
		for i := 0; i < n; i++ {
			if !lab.active(x, i) {
				continue
			}
			met := false
			for _, to := range succs {
				if nextActive[to][i] >= 0 {
					met = true
					break
				}
			}
			if !met {
				out = append(out, Obligation{Node: from, At: i})
				break // report the earliest unmet moment per node
			}
		}
	}
	return out, nil
}

// Proves reports whether the lattice's entry ⊃ ◇exit conclusion is
// witnessed on the execution: all edge obligations met, except those
// born within the final tail positions (which may still be pending on
// a longer run).
func (l *Lattice) Proves(x *ioa.Execution, tail int) (bool, []Obligation, error) {
	obs, err := l.Check(x)
	if err != nil {
		return false, nil, err
	}
	var hard []Obligation
	for _, o := range obs {
		if o.At < x.Len()+1-tail {
			hard = append(hard, o)
		}
	}
	return len(hard) == 0, hard, nil
}
