package obs

// A Progress is one in-flight snapshot of a long-running engine walk
// (BFS exploration, induction domain streaming, stabilization
// certification). Engines emit raw counts only — no rates, no clock
// reads — so the disabled path stays one nil check; the consumer
// (internal/ledger) timestamps snapshots and derives states/sec and
// ETA from consecutive readings.
type Progress struct {
	// Phase names the emitting walk: "explore", "induct",
	// "stabilize-closure", ... One run may pass through several phases.
	Phase string `json:"phase"`
	// Depth is the completed BFS level for level-synchronized
	// exploration; 0 when the walk has no level structure.
	Depth int64 `json:"depth,omitempty"`
	// States is the monotone unit of work: admitted states for
	// exploration, visited domain states for induction.
	States int64 `json:"states"`
	// Frontier is the number of states still awaiting expansion (the
	// current BFS level, or the unexpanded suffix of a sequential
	// sweep); 0 when unknown.
	Frontier int64 `json:"frontier,omitempty"`
	// Total is the known total work when the walk can bound it (the
	// induction domain's size); 0 when open-ended.
	Total int64 `json:"total,omitempty"`
	// Occupancy and ArenaBytes mirror the store gauges: interned
	// states and encoded arena payload.
	Occupancy  int64 `json:"occupancy,omitempty"`
	ArenaBytes int64 `json:"arena_bytes,omitempty"`
	// SpilledBytes is the on-disk run volume of a disk-spilling seen
	// set; 0 for in-RAM backends.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	// BarrierWaitNS is the cumulative time a distributed worker spent
	// blocked at level barriers; 0 outside coordinator/worker mode.
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
	// Done marks the walk's final snapshot. Consumers always record
	// it, whatever their throttling cadence.
	Done bool `json:"done,omitempty"`
}

// EmitProgress forwards one snapshot to the run's progress sink, if
// any. Nil-safe on both the Obs and the sink, so engines guard
// emission with the same single nil check as every other metric.
func (o *Obs) EmitProgress(p Progress) {
	if o == nil || o.Progress == nil {
		return
	}
	o.Progress(p)
}
