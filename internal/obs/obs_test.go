package obs

import (
	"expvar"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNewWiresMetricSets(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Explore.States.Add(10)
	o.Memo.NextHit.Add(3)
	o.Sim.Steps.Add(7)
	o.Faults.Drop.Add(1)
	o.Proof.MapStates.Add(2)
	s := o.Reg.Snapshot()
	checks := map[string]int64{
		"explore.states_admitted":  10,
		"memo.next_hit":            3,
		"sim.steps":                7,
		"faults.drop":              1,
		"proof.map_states_checked": 2,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if o.Now().IsZero() {
		t.Error("enabled Obs clock returned zero time")
	}
}

func TestNilObsSafe(t *testing.T) {
	var o *Obs
	if !o.Now().IsZero() {
		t.Fatal("nil Obs Now not zero")
	}
	o.PublishExpvar("nil-obs-test")
	// The nil metric sets it implies are safe too.
	var em *ExploreMetrics
	var mm *MemoMetrics
	var sm *SimMetrics
	_ = em
	if mm.Values() != nil {
		t.Fatal("nil MemoMetrics.Values not nil")
	}
	sm.ClassFire("users")
}

func TestSimClassFire(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Sim.ClassFire("users")
	o.Sim.ClassFire("users")
	o.Sim.ClassFire("arb")
	s := o.Reg.Snapshot()
	if s.Counters["sim.class_fires.users"] != 2 || s.Counters["sim.class_fires.arb"] != 1 {
		t.Fatalf("class counters = %+v", s.Counters)
	}
}

func TestMemoValues(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Memo.NextHit.Add(4)
	o.Memo.EnabledMiss.Add(2)
	v := o.Memo.Values()
	if v["next_hit"] != 4 || v["enabled_miss"] != 2 || v["next_miss"] != 0 {
		t.Fatalf("Values = %+v", v)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Explore.States.Add(5)
	o.PublishExpvar("obs-test-metrics")
	o.PublishExpvar("obs-test-metrics") // must not panic
	v := expvar.Get("obs-test-metrics")
	if v == nil {
		t.Fatal("metric var not published")
	}
	if !strings.Contains(v.String(), "explore.states_admitted") {
		t.Fatalf("published snapshot = %s", v.String())
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
