package obs

import (
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNewWiresMetricSets(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Explore.States.Add(10)
	o.Memo.NextHit.Add(3)
	o.Sim.Steps.Add(7)
	o.Faults.Drop.Add(1)
	o.Proof.MapStates.Add(2)
	s := o.Reg.Snapshot()
	checks := map[string]int64{
		"explore.states_admitted":  10,
		"memo.next_hit":            3,
		"sim.steps":                7,
		"faults.drop":              1,
		"proof.map_states_checked": 2,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if o.Now().IsZero() {
		t.Error("enabled Obs clock returned zero time")
	}
}

func TestNilObsSafe(t *testing.T) {
	var o *Obs
	if !o.Now().IsZero() {
		t.Fatal("nil Obs Now not zero")
	}
	o.PublishExpvar("nil-obs-test")
	// The nil metric sets it implies are safe too.
	var em *ExploreMetrics
	var mm *MemoMetrics
	var sm *SimMetrics
	_ = em
	if mm.Values() != nil {
		t.Fatal("nil MemoMetrics.Values not nil")
	}
	sm.ClassFire("users")
}

func TestSimClassFire(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Sim.ClassFire("users")
	o.Sim.ClassFire("users")
	o.Sim.ClassFire("arb")
	s := o.Reg.Snapshot()
	if s.Counters["sim.class_fires.users"] != 2 || s.Counters["sim.class_fires.arb"] != 1 {
		t.Fatalf("class counters = %+v", s.Counters)
	}
}

func TestMemoValues(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Memo.NextHit.Add(4)
	o.Memo.EnabledMiss.Add(2)
	v := o.Memo.Values()
	if v["next_hit"] != 4 || v["enabled_miss"] != 2 || v["next_miss"] != 0 {
		t.Fatalf("Values = %+v", v)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	o := New(fakeClock(time.Millisecond))
	o.Explore.States.Add(5)
	o.PublishExpvar("obs-test-metrics")
	o.PublishExpvar("obs-test-metrics") // must not panic
	v := expvar.Get("obs-test-metrics")
	if v == nil {
		t.Fatal("metric var not published")
	}
	if !strings.Contains(v.String(), "explore.states_admitted") {
		t.Fatalf("published snapshot = %s", v.String())
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/debug/healthz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestServeHealthzAndExtraEndpoints(t *testing.T) {
	extra := Endpoint{
		Pattern: "/debug/extra",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if _, err := io.WriteString(w, "extra-ok"); err != nil {
				return
			}
		}),
	}
	addr, stop, err := Serve("127.0.0.1:0", extra)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	for path, want := range map[string]string{"/debug/healthz": "ok\n", "/debug/extra": "extra-ok"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if string(body) != want {
			t.Errorf("GET %s = %q, want %q", path, body, want)
		}
	}
}

// TestServeDrainsInFlight: stop() waits for an in-flight request to
// complete (up to the drain deadline) instead of cutting it off.
func TestServeDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	slow := Endpoint{
		Pattern: "/debug/slow",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			close(started)
			time.Sleep(200 * time.Millisecond)
			if _, err := io.WriteString(w, "drained"); err != nil {
				return
			}
		}),
	}
	addr, stop, err := Serve("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/debug/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-started
	if err := stop(); err != nil {
		t.Fatalf("stop during in-flight request: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if r.body != "drained" {
		t.Fatalf("in-flight response = %q, want %q", r.body, "drained")
	}
}
