// Package obs is the repository's stdlib-only observability layer:
// sharded allocation-free metrics (counters, gauges, power-of-two
// histograms), span tracing in the Chrome trace_event format, and
// debug endpoints (expvar + net/http/pprof).
//
// The design contract is that disabled observability is near-free. A
// nil *Obs (and the nil metric-set and tracer pointers it implies) is
// the off switch: every instrumented hot path guards its
// instrumentation behind one nil check and performs no allocation, no
// atomic operation, and no clock read when observability is off.
// BenchmarkObsOverhead in internal/explore pins the ≤2% budget
// against the pre-instrumentation engine (EXPERIMENTS.md E17).
//
// Wall-clock access is injected: New takes a clock (nil means
// testseed.Now, the repository's single sanctioned accessor), so the
// nondet analyzer's no-time.Now guarantee holds here too, and tests
// drive tracers and timing histograms with fake clocks.
package obs

import (
	"expvar"
	"fmt"
	"sync"
	"time"

	"repro/internal/testseed"
)

// An Obs bundles the observability sinks one run threads through the
// instrumented subsystems: a metric registry with pre-resolved typed
// metric sets, and a tracer. A nil *Obs disables everything.
type Obs struct {
	// Reg owns every metric; Snapshot/WriteJSON serve the -metrics-out
	// artifact and the expvar endpoint.
	Reg *Registry
	// Tracer collects trace_event spans for -trace-out.
	Tracer *Tracer

	// Explore, Memo, Sim, Faults, Proof, Store, Stabilize, Induct are
	// the per-subsystem metric sets, pre-resolved from Reg so hot
	// paths never take the registry lock.
	Explore   *ExploreMetrics
	Memo      *MemoMetrics
	Sim       *SimMetrics
	Faults    *FaultMetrics
	Proof     *ProofMetrics
	Store     *StoreMetrics
	Stabilize *StabilizeMetrics
	Induct    *InductMetrics
	Dist      *DistMetrics

	// Progress, when non-nil, receives in-flight Progress snapshots
	// from the engines (BFS barriers, the induct streaming loop).
	// Engines call EmitProgress rather than this field directly so the
	// nil-Obs fast path stays a single comparison. Set it before the
	// run starts; it may be called from whichever goroutine drives the
	// walk, so sinks must be internally synchronized.
	Progress func(Progress)

	clock func() time.Time
}

// New builds an enabled Obs. clock supplies the wall time for spans
// and timing histograms; nil means testseed.Now.
func New(clock func() time.Time) *Obs {
	if clock == nil {
		clock = testseed.Now
	}
	reg := NewRegistry()
	return &Obs{
		Reg:       reg,
		Tracer:    NewTracer(clock),
		Explore:   newExploreMetrics(reg),
		Memo:      newMemoMetrics(reg),
		Sim:       newSimMetrics(reg),
		Faults:    newFaultMetrics(reg),
		Proof:     newProofMetrics(reg),
		Store:     newStoreMetrics(reg),
		Stabilize: newStabilizeMetrics(reg),
		Induct:    newInductMetrics(reg),
		Dist:      newDistMetrics(reg),
		clock:     clock,
	}
}

// Now reads the observation clock; the zero time when o is nil.
func (o *Obs) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.clock()
}

// ExploreMetrics instruments the parallel state-space explorer.
type ExploreMetrics struct {
	// States counts admitted states (equals the result length).
	States *Counter
	// Levels counts completed BFS levels.
	Levels *Counter
	// Successors counts successor states emitted by workers before
	// merge-time deduplication.
	Successors *Counter
	// DedupHits counts successors suppressed by sender-side dedup.
	DedupHits *Counter
	// Frontier is the distribution of per-level frontier sizes.
	Frontier *Histogram
	// LevelNS is the distribution of per-level wall times (ns).
	LevelNS *Histogram
}

func newExploreMetrics(r *Registry) *ExploreMetrics {
	return &ExploreMetrics{
		States:     r.Counter("explore.states_admitted"),
		Levels:     r.Counter("explore.levels"),
		Successors: r.Counter("explore.successors_emitted"),
		DedupHits:  r.Counter("explore.dedup_hits"),
		Frontier:   r.Histogram("explore.frontier_size"),
		LevelNS:    r.Histogram("explore.level_ns"),
	}
}

// MemoMetrics instruments the composition transition/enabled caches
// (ioa compMemo).
type MemoMetrics struct {
	NextHit, NextMiss       *Counter
	EnabledHit, EnabledMiss *Counter
}

func newMemoMetrics(r *Registry) *MemoMetrics {
	return &MemoMetrics{
		NextHit:     r.Counter("memo.next_hit"),
		NextMiss:    r.Counter("memo.next_miss"),
		EnabledHit:  r.Counter("memo.enabled_hit"),
		EnabledMiss: r.Counter("memo.enabled_miss"),
	}
}

// Values returns the current readings keyed for a tracer counter
// series.
func (m *MemoMetrics) Values() map[string]int64 {
	if m == nil {
		return nil
	}
	return map[string]int64{
		"next_hit":     m.NextHit.Value(),
		"next_miss":    m.NextMiss.Value(),
		"enabled_hit":  m.EnabledHit.Value(),
		"enabled_miss": m.EnabledMiss.Value(),
	}
}

// SimMetrics instruments the untimed simulator: aggregate step counts
// and per-fairness-class fire counters, which expose the
// partition-fairness structure of §2.1 empirically — under a fair
// policy every class's counter grows; a starved class's counter
// stalls.
type SimMetrics struct {
	// Runs counts simulation runs.
	Runs *Counter
	// Steps counts scheduled steps across runs.
	Steps *Counter
	// EnabledClasses is the distribution of how many classes were
	// schedulable at each step (scheduling pressure).
	EnabledClasses *Histogram

	reg     *Registry
	mu      sync.Mutex
	classes map[string]*Counter
}

func newSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Runs:           r.Counter("sim.runs"),
		Steps:          r.Counter("sim.steps"),
		EnabledClasses: r.Histogram("sim.enabled_classes"),
		reg:            r,
		classes:        make(map[string]*Counter),
	}
}

// ClassFire counts one fired action of the named fairness class. The
// per-class counters appear in snapshots as "sim.class_fires.<name>".
func (m *SimMetrics) ClassFire(class string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.classes[class]
	if !ok {
		c = m.reg.Counter("sim.class_fires." + class)
		m.classes[class] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// FaultMetrics counts injected fault events per class. Under the
// composition memo, scheduled-fault decisions are computed once per
// distinct (state, action) and then replayed from cache, so these
// count distinct fault computations, not trace occurrences; see
// DESIGN.md's observability section.
type FaultMetrics struct {
	Sent    *Counter // messages offered to scheduled channels
	Drop    *Counter
	Dup     *Counter
	Delay   *Counter // messages given a nonzero overtake budget
	Reorder *Counter // adversary reorder actions fired
	Crash   *Counter
	Restart *Counter
}

func newFaultMetrics(r *Registry) *FaultMetrics {
	return &FaultMetrics{
		Sent:    r.Counter("faults.messages_sent"),
		Drop:    r.Counter("faults.drop"),
		Dup:     r.Counter("faults.dup"),
		Delay:   r.Counter("faults.delay"),
		Reorder: r.Counter("faults.reorder"),
		Crash:   r.Counter("faults.crash"),
		Restart: r.Counter("faults.restart"),
	}
}

// StoreMetrics instruments the interned state store behind the
// explorers (internal/store): how many distinct states are interned
// and how many encoded bytes the shard arenas hold. Both are gauges
// set at level barriers (and at the end of sequential sweeps), so a
// live /debug/vars scrape shows the current exploration's footprint;
// bytes-per-state is ArenaBytes/Occupancy.
type StoreMetrics struct {
	// Occupancy is the number of interned states.
	Occupancy *Gauge
	// ArenaBytes is the total encoded payload across shard arenas.
	ArenaBytes *Gauge
	// ArenaCapBytes is the total reserved arena capacity; the slack
	// over ArenaBytes is append-growth overshoot.
	ArenaCapBytes *Gauge
	// SpilledBytes is the on-disk run volume of a disk-spilling seen
	// set (store.Spill); 0 while exploring in RAM.
	SpilledBytes *Gauge
	// SpillRuns is the number of sorted runs the spill set holds.
	SpillRuns *Gauge
}

func newStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		Occupancy:     r.Gauge("store.occupancy"),
		ArenaBytes:    r.Gauge("store.arena_bytes"),
		ArenaCapBytes: r.Gauge("store.arena_cap_bytes"),
		SpilledBytes:  r.Gauge("store.spilled_bytes"),
		SpillRuns:     r.Gauge("store.spill_runs"),
	}
}

// StabilizeMetrics instruments the self-stabilization certifier
// (internal/stabilize): certification runs, envelope and closure
// sizes, the measured convergence bound, and the per-envelope-state
// rounds-to-legitimacy distribution (the stabilization-time histogram
// behind EXPERIMENTS.md E19).
type StabilizeMetrics struct {
	// Runs counts certification runs.
	Runs *Counter
	// States is the envelope-closure size of the latest run.
	States *Gauge
	// Envelope is the distinct corrupt-start count of the latest run.
	Envelope *Gauge
	// K is the latest measured worst-case rounds-to-legitimacy; -1
	// when convergence is fair-only (unbounded) or fails.
	K *Gauge
	// Rounds is the distribution of rounds-to-legitimacy over envelope
	// states, accumulated across runs.
	Rounds *Histogram
}

func newStabilizeMetrics(r *Registry) *StabilizeMetrics {
	return &StabilizeMetrics{
		Runs:     r.Counter("stabilize.runs"),
		States:   r.Gauge("stabilize.closure_states"),
		Envelope: r.Gauge("stabilize.envelope_states"),
		K:        r.Gauge("stabilize.k"),
		Rounds:   r.Histogram("stabilize.rounds_to_legitimacy"),
	}
}

// InductMetrics instruments the inductive-invariant certification
// engine (internal/induct): certification runs, the latest run's
// domain walk sizes, CTI count, and per-conjunct obligation counters
// — how many (state, step, conjunct) proof obligations each lemma of
// the strengthened conjunction discharged.
type InductMetrics struct {
	// Runs counts certification runs.
	Runs *Counter
	// Domain is the latest run's enumerated-domain size; Candidates
	// the subset satisfying the candidate invariant (whose steps carry
	// obligations); Transitions the pushed transition count.
	Domain      *Gauge
	Candidates  *Gauge
	Transitions *Gauge
	// CTIs counts counterexamples-to-induction across runs.
	CTIs *Counter

	reg         *Registry
	mu          sync.Mutex
	obligations map[string]*Counter
}

func newInductMetrics(r *Registry) *InductMetrics {
	return &InductMetrics{
		Runs:        r.Counter("induct.runs"),
		Domain:      r.Gauge("induct.domain_states"),
		Candidates:  r.Gauge("induct.candidates"),
		Transitions: r.Gauge("induct.transitions"),
		CTIs:        r.Counter("induct.ctis"),
		reg:         r,
		obligations: make(map[string]*Counter),
	}
}

// Obligations credits n discharged obligations to the named conjunct.
// The per-conjunct counters appear in snapshots as
// "induct.obligations.<name>".
func (m *InductMetrics) Obligations(conjunct string, n int64) {
	if m == nil || n == 0 {
		return
	}
	m.mu.Lock()
	c, ok := m.obligations[conjunct]
	if !ok {
		c = m.reg.Counter("induct.obligations." + conjunct)
		m.obligations[conjunct] = c
	}
	m.mu.Unlock()
	c.Add(n)
}

// DistMetrics instruments the multi-process cluster coordinator
// (internal/cluster): level barriers, cross-process candidate volume,
// cumulative barrier wait, and a per-rank shard-occupancy gauge for
// balance monitoring.
type DistMetrics struct {
	// Levels counts completed cluster-wide level barriers.
	Levels *Counter
	// SentEncs counts candidate encodings routed between processes.
	SentEncs *Counter
	// BarrierWaitNS accumulates worker time spent blocked at level
	// barriers, summed across ranks.
	BarrierWaitNS *Counter
	// Procs is the worker process count of the current run.
	Procs *Gauge

	reg    *Registry
	mu     sync.Mutex
	shards map[int]*Gauge
}

func newDistMetrics(r *Registry) *DistMetrics {
	return &DistMetrics{
		Levels:        r.Counter("dist.levels"),
		SentEncs:      r.Counter("dist.sent_encs"),
		BarrierWaitNS: r.Counter("dist.barrier_wait_ns"),
		Procs:         r.Gauge("dist.procs"),
		reg:           r,
		shards:        make(map[int]*Gauge),
	}
}

// ShardStates sets rank's shard occupancy. The per-rank gauges appear
// in snapshots as "dist.shard_states.<rank>".
func (m *DistMetrics) ShardStates(rank int, states int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	g, ok := m.shards[rank]
	if !ok {
		g = m.reg.Gauge(fmt.Sprintf("dist.shard_states.%d", rank))
		m.shards[rank] = g
	}
	m.mu.Unlock()
	g.Set(states)
}

// ProofMetrics instruments the possibilities-mapping checker.
type ProofMetrics struct {
	// MapStates counts reachable states of A whose outgoing steps were
	// checked against the mapping conditions.
	MapStates *Counter
	// MapSteps counts individual (state, action, successor) step
	// checks.
	MapSteps *Counter
	// StateNS is the distribution of per-state check times (ns).
	StateNS *Histogram
}

func newProofMetrics(r *Registry) *ProofMetrics {
	return &ProofMetrics{
		MapStates: r.Counter("proof.map_states_checked"),
		MapSteps:  r.Counter("proof.map_steps_checked"),
		StateNS:   r.Histogram("proof.map_state_check_ns"),
	}
}

// expvarMu serializes Publish checks: expvar panics on duplicate
// names, and tests publish repeatedly.
var expvarMu sync.Mutex

// PublishExpvar registers the registry snapshot under name in the
// process-wide expvar table (served at /debug/vars). Publishing the
// same name again is a no-op, so repeated runs in one process (tests)
// keep the first binding.
func (o *Obs) PublishExpvar(name string) {
	if o == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	reg := o.Reg
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}
