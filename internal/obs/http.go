package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// An Endpoint is an extra handler mounted on the debug mux by Serve.
// Pattern follows http.ServeMux syntax (e.g. "/debug/progress").
type Endpoint struct {
	Pattern string
	Handler http.Handler
}

// drainTimeout bounds how long Serve's shutdown function waits for
// in-flight scrapes (a /debug/pprof/profile capture, a half-written
// /debug/vars response) to finish before forcibly closing.
const drainTimeout = 5 * time.Second

// Serve starts the live debug endpoint on addr (e.g. ":6060"):
// /debug/vars (expvar, including any snapshot published with
// PublishExpvar), /debug/pprof/... (CPU, heap, goroutine, and
// execution-trace profiles), /debug/healthz (liveness probe: 200 "ok"
// while the server accepts requests), plus any extra endpoints the
// caller mounts (e.g. the ledger's /debug/progress). It returns the
// bound address — useful with ":0" — and a shutdown function. The
// shutdown function drains gracefully: it stops accepting new
// connections, waits up to drainTimeout for in-flight requests to
// complete, and only then forces remaining connections closed. The
// server runs on its own mux, so importing this package never
// pollutes http.DefaultServeMux.
func Serve(addr string, extra ...Endpoint) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte("ok\n")); err != nil {
			// The scraper hung up mid-probe; nothing to report to.
			return
		}
	})
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			// The drain deadline expired with requests still in
			// flight; sever them so stop cannot hang.
			if cerr := srv.Close(); err == context.DeadlineExceeded && cerr != nil {
				err = cerr
			}
		}
		if serr := <-errc; serr != nil && serr != http.ErrServerClosed {
			return serr
		}
		return err
	}
	return ln.Addr().String(), stop, nil
}
