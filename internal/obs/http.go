package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve starts the live debug endpoint on addr (e.g. ":6060"):
// /debug/vars (expvar, including any snapshot published with
// PublishExpvar) and /debug/pprof/... (CPU, heap, goroutine, and
// execution-trace profiles). It returns the bound address — useful
// with ":0" — and a shutdown function. The server runs on its own
// mux, so importing this package never pollutes
// http.DefaultServeMux.
func Serve(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	stop := func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return ln.Addr().String(), stop, nil
}
