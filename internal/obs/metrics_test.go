package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterShardsSum(t *testing.T) {
	var c Counter
	c.Add(3)
	for i := 0; i < 100; i++ {
		c.AddShard(i, 2)
	}
	if got := c.Value(); got != 203 {
		t.Fatalf("Value = %d, want 203", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{-3, 0, 1, 5, 5, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1032 {
		t.Fatalf("count/sum = %d/%d, want 6/1032", s.Count, s.Sum)
	}
	if s.Min != -3 || s.Max != 1024 {
		t.Fatalf("min/max = %d/%d, want -3/1024", s.Min, s.Max)
	}
	want := map[[2]int64]int64{
		{math.MinInt64, 0}: 2, // -3 and 0
		{1, 1}:             1,
		{4, 7}:             2, // the two 5s
		{1024, 2047}:       1,
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d non-empty buckets, want %d: %+v", len(s.Buckets), len(want), s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[[2]int64{b.Lo, b.Hi}] != b.N {
			t.Errorf("bucket [%d,%d] = %d, want %d", b.Lo, b.Hi, b.N, want[[2]int64{b.Lo, b.Hi}])
		}
	}
}

func TestHistogramShardsMerge(t *testing.T) {
	h := NewHistogram()
	for shard := 0; shard < 16; shard++ {
		h.ObserveShard(shard, int64(shard+1))
	}
	s := h.Snapshot()
	if s.Count != 16 {
		t.Fatalf("count = %d, want 16", s.Count)
	}
	if s.Min != 1 || s.Max != 16 {
		t.Fatalf("min/max = %d/%d, want 1/16", s.Min, s.Max)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Add(1)
	c.AddShard(3, 1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics recorded values")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned a metric")
	}
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-1)
	r.Histogram("h").Observe(9)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["g"] != -1 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Histogram("lat").Observe(100)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot encoding not deterministic")
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if s.Counters["a"] != 2 || s.Counters["z"] != 1 {
		t.Fatalf("round-tripped snapshot = %+v", s)
	}
}
