package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// CounterShards is the stripe count of a Counter (power of two). Hot
// writers that know their worker index spread across stripes with
// AddShard; Value folds the stripes.
const CounterShards = 8

// stripe is one cache-line-padded counter cell: the padding keeps
// concurrent writers on different stripes from false-sharing a line.
type stripe struct {
	n atomic.Int64
	_ [56]byte
}

// A Counter is a monotonically increasing (or at least add-only)
// sharded counter. The zero value is ready to use; a nil *Counter
// discards every operation, which is the disabled fast path of the
// whole metrics layer.
type Counter struct {
	stripes [CounterShards]stripe
}

// Add adds n on stripe 0 — the single-writer path.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.stripes[0].n.Add(n)
}

// AddShard adds n on the stripe selected by shard (masked into
// range), letting concurrent workers write contention-free.
func (c *Counter) AddShard(shard int, n int64) {
	if c == nil {
		return
	}
	c.stripes[shard&(CounterShards-1)].n.Add(n)
}

// Value folds the stripes into the counter's total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// A Gauge is a last-write-wins instantaneous value. Nil-safe like
// Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i>0 holds
// observations v with bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i);
// bucket 0 holds v <= 0. Power-of-two buckets cover the full int64
// range with a constant-time, division-free index.
const histBuckets = 65

// HistShards is the stripe count of a Histogram.
const HistShards = 4

// histShard is one stripe of a Histogram. All fields are atomics, so
// a shard is written lock-free; min/max converge by compare-and-swap.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// A Histogram records a distribution in power-of-two buckets —
// latencies in nanoseconds, frontier sizes, retry counts. Construct
// with NewHistogram (min tracking needs a sentinel); a nil *Histogram
// discards observations.
type Histogram struct {
	shards [HistShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.shards {
		h.shards[i].min.Store(math.MaxInt64)
		h.shards[i].max.Store(math.MinInt64)
	}
	return h
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records v on stripe 0.
func (h *Histogram) Observe(v int64) { h.ObserveShard(0, v) }

// ObserveShard records v on the stripe selected by shard.
func (h *Histogram) ObserveShard(shard int, v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[shard&(HistShards-1)]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.buckets[bucketOf(v)].Add(1)
	for {
		cur := sh.min.Load()
		if v >= cur || sh.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := sh.max.Load()
		if v <= cur || sh.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// A HistBucket is one non-empty bucket of a histogram snapshot: the
// value range [Lo, Hi] and the observation count.
type HistBucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// A HistSnapshot is a point-in-time merge of a histogram's stripes.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// bucketRange returns the [lo, hi] value range of bucket i.
func bucketRange(i int) (int64, int64) {
	if i == 0 {
		return math.MinInt64, 0
	}
	lo := int64(1) << (i - 1)
	if i == 64 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// Snapshot merges the stripes. The result is not atomic with respect
// to concurrent observers (counts may trail sums by an in-flight
// observation), which is fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Min, s.Max = math.MaxInt64, math.MinInt64
	var counts [histBuckets]int64
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.min.Load(); m < s.Min {
			s.Min = m
		}
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range sh.buckets {
			counts[b] += sh.buckets[b].Load()
		}
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	for b, n := range counts {
		if n == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, N: n})
	}
	return s
}

// A Registry owns named metrics. Get-or-create accessors are safe for
// concurrent use; hot paths should resolve their metrics once and hold
// the pointers (the typed metric sets in Obs do exactly that). A nil
// *Registry returns nil metrics, which discard all writes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// A Snapshot is a point-in-time JSON-marshalable view of every metric
// in a registry. Map keys marshal sorted, so the encoding is
// deterministic for a given set of values.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON emits the snapshot as indented JSON (the -metrics-out
// artifact format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
