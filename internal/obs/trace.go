package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/testseed"
)

// Span tracing in the Chrome trace_event format. A Tracer collects
// events in memory; WriteJSON emits the {"traceEvents": [...]} JSON
// that chrome://tracing and Perfetto load directly. Durations use
// complete events (ph "X": one event carrying ts+dur), fault
// injections use instant events (ph "i"), and per-level cache
// statistics use counter events (ph "C"), which the viewers plot as
// stacked series over the timeline.
//
// A nil *Tracer is the disabled tracer: every method returns
// immediately off a nil check, so instrumented hot paths cost one
// branch when tracing is off.

// A TraceEvent is one trace_event record. Field names follow the
// Chrome trace-event JSON keys.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "C" counter,
	// "M" metadata.
	Ph string `json:"ph"`
	// TS is the event timestamp in microseconds from the tracer epoch.
	TS float64 `json:"ts"`
	// Dur is the duration in microseconds (complete events only).
	Dur float64 `json:"dur,omitempty"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// S is the instant-event scope ("t" thread, "p" process, "g"
	// global).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// A TraceFile is the top-level trace_event JSON document. Exported so
// tests (and external tooling) can round-trip -trace-out artifacts.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// DefaultMaxEvents bounds a tracer's in-memory buffer. Past the
// bound, events are counted as dropped rather than recorded, so a
// runaway trace cannot exhaust memory.
const DefaultMaxEvents = 1 << 20

// A Tracer collects trace events. Construct with NewTracer; the zero
// value is not usable (it has no clock).
type Tracer struct {
	clock func() time.Time
	epoch time.Time
	max   int

	mu      sync.Mutex
	events  []TraceEvent
	dropped int64
}

// NewTracer builds a tracer reading time from clock (nil means
// testseed.Now, the repository's sanctioned wall-clock accessor). The
// tracer's epoch — trace time zero — is the clock reading at
// construction.
func NewTracer(clock func() time.Time) *Tracer {
	if clock == nil {
		clock = testseed.Now
	}
	return &Tracer{clock: clock, epoch: clock(), max: DefaultMaxEvents}
}

// SetMaxEvents adjusts the buffer bound (values <= 0 restore the
// default). Not safe to call concurrently with event recording.
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxEvents
	}
	t.max = n
}

// Now reads the tracer's clock; the zero time when tracing is off.
// Span starts pass through here so call sites never touch a clock on
// the disabled path.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock()
}

// us converts an absolute time to microseconds from the epoch.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.epoch).Nanoseconds()) / 1e3
}

// record appends an event, honoring the buffer bound.
func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Complete records a complete span (ph "X") that started at start and
// ends now, on thread tid. args may be nil.
func (t *Tracer) Complete(tid int, cat, name string, start time.Time, args map[string]any) {
	if t == nil {
		return
	}
	end := t.clock()
	t.record(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: t.us(start), Dur: float64(end.Sub(start).Nanoseconds()) / 1e3,
		PID: 1, TID: tid, Args: args,
	})
}

// Span starts a span and returns the function that ends it, for
// defer-style use on non-hot paths. On a nil tracer it returns a
// shared no-op.
func (t *Tracer) Span(tid int, cat, name string) func() {
	if t == nil {
		return nopEnd
	}
	start := t.clock()
	return func() { t.Complete(tid, cat, name, start, nil) }
}

var nopEnd = func() {}

// Instant records an instant event (ph "i", thread scope) — a single
// moment on the timeline, used for fault injections.
func (t *Tracer) Instant(tid int, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.record(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: t.us(t.clock()), PID: 1, TID: tid, Args: args,
	})
}

// CounterEvent records a counter sample (ph "C"): the viewers plot
// each key of values as a series over time. Used for per-level memo
// hit/miss progressions.
func (t *Tracer) CounterEvent(tid int, name string, values map[string]int64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.record(TraceEvent{
		Name: name, Ph: "C",
		TS: t.us(t.clock()), PID: 1, TID: tid, Args: args,
	})
}

// NameThread records metadata naming thread tid in the viewers.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// NameProcess records metadata naming the process in the viewers.
func (t *Tracer) NameProcess(name string) {
	if t == nil {
		return
	}
	t.record(TraceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": name},
	})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the buffer bound discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events, in record order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON emits the buffered events as a trace_event JSON document
// (the -trace-out artifact format, loadable by Perfetto and
// chrome://tracing).
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := TraceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
