package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, so trace timestamps are
// deterministic in tests.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func TestTracerComplete(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond)) // epoch = reading 0
	start := tr.Now()                            // reading 1 → 1ms
	tr.Complete(3, "explore", "level", start, map[string]any{"level": 2})
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	e := ev[0]
	if e.Ph != "X" || e.Name != "level" || e.Cat != "explore" || e.TID != 3 {
		t.Fatalf("event = %+v", e)
	}
	if e.TS != 1000 { // 1ms in us
		t.Fatalf("TS = %v, want 1000", e.TS)
	}
	if e.Dur != 1000 { // end at reading 2 → dur 1ms
		t.Fatalf("Dur = %v, want 1000", e.Dur)
	}
}

func TestTracerSpanInstantCounterMeta(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	tr.NameProcess("ioasim")
	tr.NameThread(1, "main")
	end := tr.Span(1, "sim", "run")
	end()
	tr.Instant(2, "faults", "drop", map[string]any{"channel": "u1->arb"})
	tr.CounterEvent(1, "memo", map[string]int64{"hit": 5, "miss": 2})
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	phs := []string{"M", "M", "X", "i", "C"}
	for i, want := range phs {
		if ev[i].Ph != want {
			t.Errorf("event %d phase = %q, want %q", i, ev[i].Ph, want)
		}
	}
	if ev[3].S != "t" {
		t.Errorf("instant scope = %q, want t", ev[3].S)
	}
	if ev[4].Args["hit"] != int64(5) {
		t.Errorf("counter args = %+v", ev[4].Args)
	}
}

func TestTracerMaxEvents(t *testing.T) {
	tr := NewTracer(fakeClock(time.Microsecond))
	tr.SetMaxEvents(3)
	for i := 0; i < 10; i++ {
		tr.Instant(1, "x", "e", nil)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerWriteJSONRoundTrip(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	tr.NameProcess("test")
	start := tr.Now()
	tr.Complete(1, "c", "span", start, nil)
	tr.Instant(1, "c", "evt", map[string]any{"k": "v"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TraceFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "" || e.Name == "" {
			t.Errorf("event missing ph/name: %+v", e)
		}
	}
}

func TestTracerEmptyWriteJSON(t *testing.T) {
	tr := NewTracer(fakeClock(time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents": []`)) {
		t.Fatalf("empty trace should emit an empty array, got %s", buf.String())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetMaxEvents(5)
	if !tr.Now().IsZero() {
		t.Fatal("nil tracer Now not zero")
	}
	tr.Complete(1, "c", "n", time.Time{}, nil)
	tr.Span(1, "c", "n")()
	tr.Instant(1, "c", "n", nil)
	tr.CounterEvent(1, "n", nil)
	tr.NameThread(1, "n")
	tr.NameProcess("n")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
}
