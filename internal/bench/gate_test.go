package bench

import (
	"strings"
	"testing"
)

func findCheck(checks []GateCheck, key, aspect string) *GateCheck {
	for i := range checks {
		if checks[i].Key == key && checks[i].Aspect == aspect {
			return &checks[i]
		}
	}
	return nil
}

func TestCompareTrajectory(t *testing.T) {
	base := []TrajectoryPoint{
		{Key: "arbiter1/serial/w1", States: 256, NS: 1_000_000},
		{Key: "arbiter2/serial/w1", States: 7720, NS: 10_000_000},
		{Key: "arbiter3/serial/w1", States: 24976, NS: 100_000_000},
	}
	fresh := []TrajectoryPoint{
		{Key: "arbiter1/serial/w1", States: 256, NS: 2_000_000},   // 2x slower: within 5x
		{Key: "arbiter2/serial/w1", States: 7721, NS: 10_000_000}, // state drift
		// arbiter3 row missing entirely
	}
	checks := CompareTrajectory("BENCH_x.json", base, fresh, 5, 1)
	if c := findCheck(checks, "arbiter1/serial/w1", "states"); c == nil || !c.OK {
		t.Fatalf("matching states flagged: %+v", c)
	}
	if c := findCheck(checks, "arbiter1/serial/w1", "wall"); c == nil || !c.OK {
		t.Fatalf("2x wall drift inside 5x threshold flagged: %+v", c)
	}
	if c := findCheck(checks, "arbiter2/serial/w1", "states"); c == nil || c.OK {
		t.Fatalf("state drift not caught: %+v", c)
	}
	if c := findCheck(checks, "arbiter3/serial/w1", "states"); c == nil || c.OK || !strings.Contains(c.Detail, "missing") {
		t.Fatalf("missing row not caught: %+v", c)
	}
}

// TestCompareTrajectoryHandicap: the CI negative arm — a handicap
// large enough must push an otherwise-identical sweep over the wall
// threshold, proving the gate can fail.
func TestCompareTrajectoryHandicap(t *testing.T) {
	base := []TrajectoryPoint{{Key: "k", States: 10, NS: 1000}}
	fresh := []TrajectoryPoint{{Key: "k", States: 10, NS: 1000}}
	if c := findCheck(CompareTrajectory("f", base, fresh, 5, 1), "k", "wall"); c == nil || !c.OK {
		t.Fatalf("identical run failed without handicap: %+v", c)
	}
	if c := findCheck(CompareTrajectory("f", base, fresh, 5, 1000), "k", "wall"); c == nil || c.OK {
		t.Fatalf("1000x handicap did not trip the wall check: %+v", c)
	}
}

// TestValidateTrajectoriesCommitted runs the structural half of the
// gate against the repository's committed BENCH files: every verdict
// must be internally consistent and the negative controls present.
func TestValidateTrajectoriesCommitted(t *testing.T) {
	checks, err := ValidateTrajectories("../..")
	if err != nil {
		t.Fatalf("ValidateTrajectories: %v", err)
	}
	if len(checks) == 0 {
		t.Fatal("no structural checks produced")
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("committed %s %s %s: %s", c.File, c.Key, c.Aspect, c.Detail)
		}
	}
}

// TestGateCommittedObsBaseline: the committed BENCH_obs.json rows must
// align with the canonical gate configuration's row keys, so a fresh
// -bench-gate sweep compares like with like.
func TestGateCommittedObsBaseline(t *testing.T) {
	rows, err := readBench[ObsRow]("../..", "BENCH_obs.json")
	if err != nil {
		t.Fatalf("readBench: %v", err)
	}
	cfg := GateObsConfig(1, nil)
	for _, r := range rows {
		if r.Workers != cfg.Workers {
			t.Errorf("committed row %s/%s measured at %d workers; gate re-runs at %d",
				r.System, r.Mode, r.Workers, cfg.Workers)
		}
	}
}
