package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/arbiter/dist"
	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/mapping"
	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/proof"
	"repro/internal/sim"
)

// A ChaosRow is one cell of a chaos sweep: one arbiter variant (plain
// A₃ or retry-hardened A₃ʳ) run under one seeded fault schedule, with
// every property of the correctness hierarchy re-checked along the
// sampled fair execution.
type ChaosRow struct {
	Profile  faults.Profile
	Seed     int64
	Hardened bool // A₃ʳ when true, plain A₃ when false
	// Steps is the length of the closed-system run.
	Steps int
	// Grants counts grant(u) actions per user.
	Grants []int
	// Starved reports an observed no-lockout violation: some user's
	// final request stayed unanswered for the entire tail of the run.
	Starved bool
	// MutualExclusion reports that at most one process/user held the
	// resource in every reached state (token uniqueness).
	MutualExclusion bool
	// Lemma35, Lemma36, and Lemma41 report whether the graph-level
	// invariants (single grant arrow; requests point to the root;
	// buffer coherence) held in the h₂-image of every reached state.
	Lemma35, Lemma36, Lemma41 bool
	// RefinesA2 reports that the possibilities mapping (h₂ for the
	// plain system, h₂ʳ for the hardened one) held along the sampled
	// execution; RefinesA1 that the corresponding A₂ execution lifted
	// through h₁ to the specification as well.
	RefinesA2, RefinesA1 bool
	// MaxPending is the worst number of steps any spec-level request
	// obligation stayed open (the untimed §3.4 latency analogue);
	// -1 when the run does not lift to the specification.
	MaxPending int
	// MaxOutage is the longest consecutive run of reached states in
	// which some per-state safety property (token uniqueness or a
	// Lemma 35/36/41 invariant) was violated — how long the system
	// stayed visibly corrupt before the faults washed out.
	MaxOutage int
	// MaxServiceGap is the longest span of steps during which some
	// user's request was pending and no grant fired at all (to
	// anyone) — how long service stopped, including the run's tail.
	MaxServiceGap int
	// RecoverWithin echoes the acceptance window k from the config;
	// Recovered is the cell's recovery verdict, MaxOutage <= k and
	// MaxServiceGap <= k. Both are meaningful only when the config set
	// RecoverWithin > 0.
	RecoverWithin int
	Recovered     bool
}

// ChaosConfig parameterizes a chaos sweep.
type ChaosConfig struct {
	Tree *graph.Tree
	// Holder is the initially-holding arbiter node.
	Holder int
	// Profiles are the fault profiles to sweep (include the zero
	// profile for a fault-free baseline).
	Profiles []faults.Profile
	// Seeds drive the deterministic fault schedules.
	Seeds []int64
	// Steps bounds each closed-system run.
	Steps int
	// StarveGrants is how many grants to other users an unanswered
	// request must see before it counts as starvation (0 picks a
	// default of ten full rotations — an order of magnitude past the
	// worst queueing delay observed on conforming runs, and two
	// orders below what genuine lockout produces).
	StarveGrants int
	// Workers parallelizes the per-state safety checks of each cell
	// (mutual exclusion and the Lemma 35/36/41 graph invariants) across
	// that many goroutines. 0 means GOMAXPROCS; the results are
	// independent of the worker count.
	Workers int
	// RecoverWithin, when positive, turns each cell into a
	// recovers-within-k acceptance check: the cell passes
	// (Recovered=true) iff no safety outage and no service gap lasts
	// more than RecoverWithin steps. 0 disables the verdict.
	RecoverWithin int
}

// DefaultChaosProfiles is the standard sweep: fault-free baseline,
// loss alone, duplication alone, the combined lossy+duplicating
// channel of the acceptance scenario, and crash-restart-heavy burst
// loss (crash windows on the message channels).
func DefaultChaosProfiles() []faults.Profile {
	return []faults.Profile{
		{},
		{Drop: 0.1},
		{Drop: 0.3},
		{Duplicate: 0.15},
		{Drop: 0.3, Duplicate: 0.15},
		{Crash: 0.1},
	}
}

// Chaos sweeps profiles × seeds × {A₃, A₃ʳ} and reports, per cell,
// which properties of the hierarchical proof survive: the empirical
// ones (grants, starvation, mutual exclusion), the graph-level
// invariants of Lemmas 35/36/41 evaluated in the h₂-image of every
// reached state, and the refinement checks h₂/h₂ʳ and h₁ along the
// sampled fair execution.
func Chaos(cfg ChaosConfig) ([]ChaosRow, error) {
	var rows []ChaosRow
	for _, prof := range cfg.Profiles {
		for _, seed := range cfg.Seeds {
			for _, hardened := range []bool{false, true} {
				row, err := chaosCell(cfg, prof, seed, hardened)
				if err != nil {
					return nil, fmt.Errorf("bench: chaos %s seed=%d hardened=%t: %w",
						prof, seed, hardened, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// chaosSys abstracts over the plain and hardened systems: the hidden
// automaton, the f₂ renaming, the h₂-style state function into A₂
// over 𝒢, and access to per-process states.
type chaosSys struct {
	base      ioa.Automaton
	f2        *ioa.Mapping
	order     []int
	procOf    func(ioa.State, int) (*dist.ProcState, error)
	applyH2   func(ioa.State) (*graphlevel.State, error)
	startEdge func() (int, int, error)
}

func buildChaosSys(t *graph.Tree, aug *graph.Tree, holder int, inj faults.Injection, hardened bool) (*chaosSys, error) {
	if hardened {
		sys, err := dist.NewHardened(t, holder, inj)
		if err != nil {
			return nil, err
		}
		f2, err := sys.F2(aug)
		if err != nil {
			return nil, err
		}
		m := mapping.NewH2RMap(sys, aug)
		return &chaosSys{
			base: sys.A3R, f2: f2, order: sys.Order,
			procOf:    sys.ProcStateOf,
			applyH2:   m.Apply,
			startEdge: m.StartEdge,
		}, nil
	}
	sys, err := dist.NewWithFaults(t, holder, inj)
	if err != nil {
		return nil, err
	}
	f2, err := sys.F2(aug)
	if err != nil {
		return nil, err
	}
	m := mapping.NewH2Map(sys, aug)
	return &chaosSys{
		base: sys.A3, f2: f2, order: sys.Order,
		procOf:    sys.ProcStateOf,
		applyH2:   m.Apply,
		startEdge: m.StartEdge,
	}, nil
}

func chaosCell(cfg ChaosConfig, prof faults.Profile, seed int64, hardened bool) (ChaosRow, error) {
	row := ChaosRow{Profile: prof, Seed: seed, Hardened: hardened, MaxPending: -1}
	t := cfg.Tree
	sched, err := faults.NewSchedule(seed, prof)
	if err != nil {
		return row, err
	}
	aug, err := graph.Augment(t)
	if err != nil {
		return row, err
	}
	sys, err := buildChaosSys(t, aug, cfg.Holder, faults.Injection{Sched: sched}, hardened)
	if err != nil {
		return row, err
	}

	var names []string
	for _, u := range t.NodesOf(graph.User) {
		names = append(names, t.Node(u).Name)
	}
	a3x, err := ioa.Rename(sys.base, sys.f2)
	if err != nil {
		return row, err
	}
	f1 := graphlevel.F1(aug)
	arb, err := ioa.Rename(a3x, f1)
	if err != nil {
		return row, err
	}
	env := users.HeavyLoad(names)
	closed, err := ioa.Compose("chaos", append([]ioa.Automaton{arb}, users.Automata(env)...)...)
	if err != nil {
		return row, err
	}
	x, err := sim.Run(closed, &sim.RoundRobin{}, cfg.Steps, nil)
	if err != nil {
		return row, err
	}
	row.Steps = x.Len()

	// Grants and starvation from the action trace.
	row.Grants = make([]int, len(names))
	lastReq := make([]int, len(names))
	lastGrant := make([]int, len(names))
	for u := range names {
		lastReq[u], lastGrant[u] = -1, -1
	}
	for i, act := range x.Acts {
		for u, name := range names {
			switch act {
			case ioa.Act("request", name):
				lastReq[u] = i
			case ioa.Act("grant", name):
				lastGrant[u] = i
				row.Grants[u]++
			}
		}
	}
	// A pending request is starved if service to this user has stopped
	// for good: either the run halted quiescent with the request
	// unanswered (nothing is enabled any more, e.g. the token was
	// destroyed by a dropped grant message), or the user saw no grant
	// in the entire second half of the run while the arbiter passed
	// the request over many times (grants kept flowing to others).
	// The passing-over threshold separates lockout from degradation:
	// faulty channels can stretch one wait to a few rotations, but
	// only a lost obligation explains dozens with none to this user.
	threshold := cfg.StarveGrants
	if threshold == 0 {
		threshold = 10 * len(names)
	}
	halted := x.Len() < cfg.Steps
	for u := range names {
		if lastReq[u] < 0 || lastGrant[u] >= lastReq[u] {
			continue
		}
		if halted {
			row.Starved = true
			continue
		}
		if lastGrant[u] >= x.Len()/2 {
			continue
		}
		grantsSince := 0
		for i := lastReq[u]; i < x.Len(); i++ {
			if x.Acts[i].Base() == "grant" {
				grantsSince++
			}
		}
		if grantsSince >= threshold {
			row.Starved = true
		}
	}

	// Lift the run back to an execution of f₂(A₃) resp. f₂(A₃ʳ).
	comp, err := closed.ProjectExecution(x, 0)
	if err != nil {
		return row, err
	}
	x3 := &ioa.Execution{Auto: a3x, States: comp.States}
	for _, act := range comp.Acts {
		x3.Acts = append(x3.Acts, f1.Invert(act))
	}

	// Safety in every reached state: token uniqueness directly on the
	// process states, Lemmas 35/36/41 in the h₂-image. The per-state
	// checks are pure functions of the state, so they shard across
	// workers; verdicts are conjunctions and hence order-independent.
	safety, okAt, err := chaosSafetyScan(cfg.Workers, t, sys, x3.States)
	if err != nil {
		return row, err
	}
	row.MutualExclusion = safety.mutex
	row.Lemma35, row.Lemma36, row.Lemma41 = safety.l35, safety.l36, safety.l41

	// Recovery: the longest consecutive stretch of unsafe states, and
	// the longest stretch of steps with a request pending and no grant
	// fired. With RecoverWithin set, both must fit the window.
	row.MaxOutage = longestFalseRun(okAt)
	row.MaxServiceGap = chaosServiceGap(names, x.Acts)
	row.RecoverWithin = cfg.RecoverWithin
	if cfg.RecoverWithin > 0 {
		row.Recovered = row.MaxOutage <= cfg.RecoverWithin && row.MaxServiceGap <= cfg.RecoverWithin
	}

	// Refinement of A₂ along the execution, then of A₁, then the
	// spec-level latency of request obligations.
	from, at, err := sys.startEdge()
	if err != nil {
		return row, err
	}
	a2, err := graphlevel.New(aug, from, at)
	if err != nil {
		return row, err
	}
	h2 := &proof.PossMapping{
		A: a3x,
		B: a2,
		Map: func(st ioa.State) []ioa.State {
			img, err := sys.applyH2(st)
			if err != nil {
				return nil
			}
			return []ioa.State{img}
		},
	}
	x2, err := h2.Correspond(x3)
	if err != nil {
		return row, nil // refinement of A₂ broken: report, not fail
	}
	row.RefinesA2 = true

	a2r, err := ioa.Rename(a2, f1)
	if err != nil {
		return row, err
	}
	a1 := spec.New(spec.Users(names))
	x2r := &ioa.Execution{Auto: a2r, States: x2.States}
	for _, act := range x2.Acts {
		x2r.Acts = append(x2r.Acts, f1.Apply(act))
	}
	x1, err := mapping.H1(aug, a2r, a1).Correspond(x2r)
	if err != nil {
		return row, nil
	}
	row.RefinesA1 = true

	var goals []*proof.LeadsTo
	for u := range names {
		goals = append(goals, chaosGrantResponds(names, u))
	}
	row.MaxPending = 0
	for _, lat := range proof.MaxLatency(x1, goals) {
		if lat > row.MaxPending {
			row.MaxPending = lat
		}
	}
	return row, nil
}

// chaosSafety aggregates the per-state safety verdicts of one cell.
type chaosSafety struct {
	mutex, l35, l36, l41 bool
}

// chaosSafetyScan evaluates token uniqueness and the Lemma 35/36/41
// graph invariants over every state, sharded across workers. Besides
// the aggregate verdicts it returns the per-state conjunction okAt
// (workers write disjoint indices), from which the recovery analysis
// measures outage lengths.
func chaosSafetyScan(workers int, t *graph.Tree, sys *chaosSys, states []ioa.State) (chaosSafety, []bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(states) {
		workers = len(states)
	}
	if workers < 1 {
		workers = 1
	}
	okAt := make([]bool, len(states))
	results := make([]chaosSafety, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := chaosSafety{mutex: true, l35: true, l36: true, l41: true}
			for i := w; i < len(states); i += workers {
				st := states[i]
				stateOK := true
				holders := 0
				for _, a := range sys.order {
					ps, err := sys.procOf(st, a)
					if err != nil {
						errs[w] = err
						return
					}
					if ps.Holding() {
						holders++
						continue
					}
					if v := t.Neighbors(a)[ps.LastForward()]; t.Node(v).Kind == graph.User {
						holders++
					}
				}
				if holders > 1 {
					res.mutex = false
					stateOK = false
				}
				img, err := sys.applyH2(st)
				if err != nil {
					errs[w] = err
					return
				}
				if !graphlevel.SingleRoot(img) {
					res.l35 = false
					stateOK = false
				}
				if !graphlevel.RequestsPointToRoot(img) {
					res.l36 = false
					stateOK = false
				}
				if !graphlevel.BufferInvariant(img) {
					res.l41 = false
					stateOK = false
				}
				okAt[i] = stateOK
			}
			results[w] = res
		}()
	}
	wg.Wait()
	out := chaosSafety{mutex: true, l35: true, l36: true, l41: true}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return out, nil, errs[w]
		}
		out.mutex = out.mutex && results[w].mutex
		out.l35 = out.l35 && results[w].l35
		out.l36 = out.l36 && results[w].l36
		out.l41 = out.l41 && results[w].l41
	}
	return out, okAt, nil
}

// longestFalseRun measures the longest consecutive stretch of false
// entries.
func longestFalseRun(ok []bool) int {
	cur, max := 0, 0
	for _, b := range ok {
		if b {
			cur = 0
			continue
		}
		cur++
		if cur > max {
			max = cur
		}
	}
	return max
}

// chaosServiceGap measures the longest span of steps during which
// some user's request was pending and no grant action fired at all. A
// grant to anyone ends the gap (the arbiter is serving); a tail of
// unserved pending requests counts in full.
func chaosServiceGap(names []string, acts []ioa.Action) int {
	pending := make([]bool, len(names))
	cur, max := 0, 0
	for _, act := range acts {
		any := false
		for _, p := range pending {
			if p {
				any = true
				break
			}
		}
		if any && act.Base() != "grant" {
			cur++
			if cur > max {
				max = cur
			}
		} else {
			cur = 0
		}
		for u, name := range names {
			switch act {
			case ioa.Act("request", name):
				pending[u] = true
			case ioa.Act("grant", name):
				pending[u] = false
			}
		}
	}
	return max
}

// chaosGrantResponds is the spec-level no-lockout condition for user
// u: a state with u requesting obliges a later grant(u).
func chaosGrantResponds(names []string, u int) *proof.LeadsTo {
	name := names[u]
	return &proof.LeadsTo{
		Name: "GrRes(" + name + ")",
		S: func(st ioa.State) bool {
			s, ok := st.(interface{ Requesting(int) bool })
			return ok && s.Requesting(u)
		},
		T: func(act ioa.Action) bool { return act == ioa.Act("grant", name) },
	}
}

// PrintChaos renders a chaos sweep table.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	title := "Chaos sweep — fault rates vs surviving correctness properties"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-22s %5s %-4s %6s %-12s %7s %4s %4s %4s %4s %4s %4s %8s %7s %5s %6s\n",
		"faults", "seed", "sys", "steps", "grants", "starved", "ME",
		"L35", "L36", "L41", "h2", "h1", "maxpend", "outage", "gap", "recov")
	mark := func(b bool) string {
		if b {
			return "ok"
		}
		return "FAIL"
	}
	for _, r := range rows {
		sysName := "A3"
		if r.Hardened {
			sysName = "A3r"
		}
		grants := strings.Trim(fmt.Sprint(r.Grants), "[]")
		pend := "-"
		if r.MaxPending >= 0 {
			pend = fmt.Sprint(r.MaxPending)
		}
		recov := "-"
		if r.RecoverWithin > 0 {
			recov = mark(r.Recovered)
		}
		fmt.Fprintf(w, "%-22s %5d %-4s %6d %-12s %7t %4s %4s %4s %4s %4s %4s %8s %7d %5d %6s\n",
			r.Profile, r.Seed, sysName, r.Steps, grants, r.Starved,
			mark(r.MutualExclusion), mark(r.Lemma35), mark(r.Lemma36),
			mark(r.Lemma41), mark(r.RefinesA2), mark(r.RefinesA1), pend,
			r.MaxOutage, r.MaxServiceGap, recov)
	}
	fmt.Fprintln(w)
}
