package bench

// The sweep registry: every named benchmark sweep the CLIs can run
// with `arbiterbench -sweep <name> -sweep-out <file>`. Before PR 10
// each sweep carried its own flag triple (-obs-bench /
// -obs-bench-out, -store-bench / ..., five more), and adding a sweep
// meant touching the CLI; the registry collapses that surface to two
// flags and one table. The old triples survive in arbiterbench as
// deprecated aliases for one release.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// A Sweep is one registered benchmark sweep.
type Sweep struct {
	// Name is the registry key (-sweep <name>).
	Name string
	// Artifact is the canonical committed JSON file the sweep's rows
	// land in (BENCH_<name>.json).
	Artifact string
	// Description is the one-line help text.
	Description string
	// Run executes the sweep: prints the human table to stdout and
	// returns the rows for JSON emission plus the row count for the
	// ledger.
	Run func(cfg SweepConfig) (rows any, n int, err error)
}

// SweepConfig carries the shared knobs every registered sweep draws
// from; zero values select each sweep's canonical defaults.
type SweepConfig struct {
	// Users is the users-per-arbiter-instance knob of the explore,
	// store, and obs sweeps.
	Users int
	// Sizes is the largest Dijkstra ring size of the stabilize sweep.
	Sizes int
	// Workers and Limit are the shared exploration knobs.
	Workers int
	Limit   int
	// Quick shrinks sweeps to smoke sizes.
	Quick bool
	// Out is the human-output writer (default os.Stdout).
	Out io.Writer
	// Now supplies the wall clock where a sweep times rows (nil means
	// testseed.Now).
	Now func() time.Time
}

func (c SweepConfig) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

// sweeps is the registry, in presentation order.
var sweeps = []Sweep{
	{
		Name: "explore", Artifact: "BENCH_explore.json",
		Description: "serial vs parallel sharded reachability on the closed arbiter levels (E15)",
		Run: func(cfg SweepConfig) (any, int, error) {
			users := cfg.Users
			if users <= 0 {
				users = 6
			}
			rows, err := ExploreSweep(ExploreConfig{Users: users, Reps: 3, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintExplore(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "store", Artifact: "BENCH_store.json",
		Description: "string-keyed reference explorer vs interned store-backed engine (E18)",
		Run: func(cfg SweepConfig) (any, int, error) {
			users := cfg.Users
			if users <= 0 {
				users = 6
			}
			var ws []int
			if cfg.Workers > 1 {
				ws = []int{cfg.Workers}
			}
			rows, err := StoreSweep(StoreConfig{Users: users, Limit: cfg.Limit, Workers: ws, Reps: 3, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintStore(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "obs", Artifact: "BENCH_obs.json",
		Description: "observability layer off vs on: overhead pricing (E17)",
		Run: func(cfg SweepConfig) (any, int, error) {
			users := cfg.Users
			if users <= 0 {
				users = 6
			}
			rows, err := ObsSweep(ObsConfig{Users: users, Workers: 2, Reps: 3, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintObs(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "stabilize", Artifact: "BENCH_stabilize.json",
		Description: "self-stabilization certification: Dijkstra rings + LeLann negative control (E19)",
		Run: func(cfg SweepConfig) (any, int, error) {
			max := cfg.Sizes
			if max <= 0 {
				max = 4
			}
			var sizes []int
			for n := 3; n <= max; n++ {
				sizes = append(sizes, n)
			}
			rows, err := StabilizeSweep(StabilizeConfig{Sizes: sizes, Workers: cfg.Workers, Limit: cfg.Limit, Reps: 3, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintStabilize(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "reduction", Artifact: "BENCH_reduction.json",
		Description: "symmetry quotient and ample-set POR vs unreduced exploration (E20)",
		Run: func(cfg SweepConfig) (any, int, error) {
			rcfg := ReductionConfig{Workers: cfg.Workers, Limit: cfg.Limit, Now: cfg.Now}
			if cfg.Quick {
				rcfg.SpecUsers = []int{3}
				rcfg.TreeUsers = []int{3}
				rcfg.StarUsers = []int{4}
			}
			rows, err := ReductionSweep(rcfg)
			if err != nil {
				return nil, 0, err
			}
			PrintReduction(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "induct", Artifact: "BENCH_induct.json",
		Description: "inductive-invariant certification vs full reachability (E21)",
		Run: func(cfg SweepConfig) (any, int, error) {
			rows, err := InductSweep(InductConfig{Workers: cfg.Workers, Limit: cfg.Limit, Reps: 3, Quick: cfg.Quick, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintInduct(cfg.out(), rows)
			return rows, len(rows), nil
		},
	},
	{
		Name: "dist", Artifact: "BENCH_dist.json",
		Description: "grid census by backend: in-RAM vs disk spill vs multi-process cluster (E23)",
		Run: func(cfg SweepConfig) (any, int, error) {
			rows, err := DistSweep(DistConfig{Quick: cfg.Quick, Now: cfg.Now})
			if err != nil {
				return nil, 0, err
			}
			PrintDist(cfg.out(), rows)
			return DistReport{Rows: rows}, len(rows), nil
		},
	},
}

// Sweeps returns the registry in presentation order.
func Sweeps() []Sweep { return sweeps }

// FindSweep resolves a registry name; the error of an unknown name
// lists every registered sweep.
func FindSweep(name string) (Sweep, error) {
	for _, s := range sweeps {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(sweeps))
	for i, s := range sweeps {
		names[i] = s.Name
	}
	return Sweep{}, fmt.Errorf("bench: unknown sweep %q (registered: %v)", name, names)
}

// WriteSweepJSON emits a sweep's rows as indented JSON — the one
// encoder behind every BENCH_*.json artifact.
func WriteSweepJSON(w io.Writer, rows any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
