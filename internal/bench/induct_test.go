package bench

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/explore"
	"repro/internal/induct"
	"repro/internal/reduce"
)

// TestInductDifferential is the battery's soundness spine: whenever
// Check certifies a conjunction inductive over an adequate domain,
// the reachability engine must agree the safety predicate holds over
// the reach set. A disagreement in either direction is an engine bug
// (induction is strictly stronger: it quantifies over the whole
// domain, reachability only over reachable states).
func TestInductDifferential(t *testing.T) {
	cells := []struct {
		name  string
		build func() (InductSystem, error)
	}{
		{"arbiter1-n2", func() (InductSystem, error) { return InductArbiter1(2) }},
		{"arbiter1-n3", func() (InductSystem, error) { return InductArbiter1(3) }},
		{"arbiter1-n4", func() (InductSystem, error) { return InductArbiter1(4) }},
		{"dijkstra-3-3", func() (InductSystem, error) { return InductDijkstra(3, 3) }},
		{"lelann-n3", func() (InductSystem, error) { return InductRing(3) }},
		{"burns", func() (InductSystem, error) { return InductBurns(explore.Options{}) }},
		{"lamport-2-2-1", func() (InductSystem, error) { return InductLamport(2, 2, 1) }},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			sys, err := cell.build()
			if err != nil {
				t.Fatal(err)
			}
			cert, err := induct.Check(context.Background(), sys.Auto, sys.Dom, sys.Inv, induct.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !cert.Inductive {
				t.Fatalf("not inductive: %s", cert.CTI)
			}
			if !cert.AdequacyChecked {
				t.Fatal("battery domains all carry Contains; adequacy should be checked")
			}
			v, err := explore.New(explore.Options{}).CheckInvariant(context.Background(), sys.Auto, sys.Invariant)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatalf("induction certified but reachability violates at %s", v.State.Key())
			}
			t.Logf("%s: %d domain states, %d candidates, %d transitions",
				sys.Name, cert.DomainStates, cert.Candidates, cert.Transitions)
		})
	}
}

// TestInductArbiterMustFail is the canonical non-inductive-but-true
// fixture: mutual exclusion holds on the level-1 arbiter (reachability
// proves it), yet TypeOK ∧ Mutex alone is not inductive — a domain
// state with a holding user and holder = -1 satisfies both and grants
// a second user in one step. The CTI must name that step, replay as a
// legal execution, and be closed by conjoining HolderAgreement.
func TestInductArbiterMustFail(t *testing.T) {
	sys, err := InductArbiter1(3)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := induct.Check(context.Background(), sys.Auto, sys.Dom, sys.Base, induct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Inductive || cert.CTI == nil {
		t.Fatalf("TypeOK ∧ Mutex should not be inductive bare, got %s", cert)
	}
	if cert.CTI.Kind != induct.KindStep || cert.CTI.Conjunct != "Mutex" {
		t.Fatalf("want a step CTI violating Mutex, got %s", cert.CTI)
	}
	if err := reduce.ReplayTrace(sys.Auto, cert.CTI.Trace); err != nil {
		t.Fatalf("CTI trace does not replay: %v", err)
	}
	// The pre-state must be refuted by the missing lemma — that is
	// what makes strengthening close.
	if sys.Library[0].Pred(cert.CTI.From) {
		t.Fatal("CTI pre-state satisfies HolderAgreement; strengthening could not progress")
	}
	res, err := induct.Strengthen(context.Background(), sys.Auto, sys.Dom, sys.Base, sys.Library, induct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certificate.Inductive {
		t.Fatalf("strengthening did not close:\n%s", res)
	}
	if len(res.Rounds) != 1 || res.Rounds[0].Lemma != "HolderAgreement" {
		t.Fatalf("want one round conjoining HolderAgreement, got %s", res)
	}
}

// TestInductNegative is the CI negative control: with INDUCT_NEGATIVE=1
// it asserts the non-inductive base IS inductive, so the test must
// fail — proving the checker actually finds CTIs rather than
// rubber-stamping. CI runs it expecting a non-zero exit.
func TestInductNegative(t *testing.T) {
	if os.Getenv("INDUCT_NEGATIVE") == "" {
		t.Skip("negative control; set INDUCT_NEGATIVE=1 to run (the test then must fail)")
	}
	sys, err := InductArbiter1(2)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := induct.Check(context.Background(), sys.Auto, sys.Dom, sys.Base, induct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Inductive {
		t.Fatalf("negative control: base conjunction is not inductive (CTI %s)", cert.CTI)
	}
}

// TestInductSweepQuick smoke-tests the sweep plumbing end to end:
// quick rows only, one rep, table and JSON render.
func TestInductSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep covers multi-hundred-thousand-state domains")
	}
	rows, err := InductSweep(InductConfig{Reps: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("quick sweep rows = %d, want 7", len(rows))
	}
	var maxDomain int64
	for _, r := range rows {
		if !r.Inductive {
			t.Fatalf("%s not inductive", r.System)
		}
		if r.ReachStates < 0 {
			t.Fatalf("%s missing reachability comparison", r.System)
		}
		if r.DomainStates > maxDomain {
			maxDomain = r.DomainStates
		}
	}
	// The acceptance bar: certification reaches past the largest
	// recorded reachability run (24,976 states, BENCH_store.json).
	if maxDomain <= 24976 {
		t.Fatalf("largest certified domain %d does not exceed the explored maximum", maxDomain)
	}
	var buf bytes.Buffer
	PrintInduct(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
	buf.Reset()
	if err := WriteInductJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"domain_states"`)) {
		t.Fatalf("JSON missing fields: %s", buf.String())
	}
}

// BenchmarkInductSweep is the recorded experiment (E21): quick rows
// under -short semantics are enough for CI sanity at -benchtime=1x;
// the committed BENCH_induct.json is produced by arbiterbench
// -induct-bench with the full row set.
func BenchmarkInductSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := InductSweep(InductConfig{Reps: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
