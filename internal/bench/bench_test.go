package bench

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestTheorem50BoundHolds(t *testing.T) {
	rows, err := Theorem50([]int{2, 4, 8, 16}, 1, graph.BinaryTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.WithinB {
			t.Errorf("%s: max %.1f exceeds 2bd = %.1f", r.Label, r.Max, r.Bound)
		}
		if r.First <= 0 {
			t.Errorf("%s: first response %.1f", r.Label, r.First)
		}
	}
	// The first response grows with the diameter (shape check).
	if rows[len(rows)-1].First <= rows[0].First {
		t.Error("light-load first response should grow with tree size")
	}
}

func TestTheorem50LineNearTight(t *testing.T) {
	// On a line with the holder at the far end, the lazy adversary
	// makes the first response close to the 2bd bound: request travels
	// ≈ dist hops, grant travels back ≈ dist hops, each costing b.
	rows, err := Theorem50([]int{4, 8}, 1, func(n int) (*graph.Tree, error) {
		return graph.Line(n)
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.WithinB {
			t.Errorf("%s: bound violated", r.Label)
		}
		if r.First < r.Bound/2-2 {
			t.Errorf("%s: first %.1f far below bound %.1f; adversary too weak", r.Label, r.First, r.Bound)
		}
	}
}

func TestTheorem52BoundHolds(t *testing.T) {
	rows, err := Theorem52([]int{2, 4, 8}, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, r := range rows {
		if !r.WithinB {
			t.Errorf("%s: max %.1f exceeds 3be−b = %.1f", r.Label, r.Max, r.Bound)
		}
		if r.Max <= prev {
			t.Errorf("%s: heavy-load response should grow with e", r.Label)
		}
		prev = r.Max
	}
}

func TestCombinedMessagesReduceTraffic(t *testing.T) {
	plain, err := Theorem52([]int{8}, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Theorem52([]int{8}, 1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !combined[0].WithinB {
		t.Errorf("combined variant exceeds its 2be bound: %.1f > %.1f", combined[0].Max, combined[0].Bound)
	}
	// The paper's 3-vs-2 messages-per-edge claim: the combined variant
	// moves ≈ 2/3 of the messages under heavy load.
	ratio := combined[0].MsgsPerGrant / plain[0].MsgsPerGrant
	if ratio > 0.8 || ratio < 0.5 {
		t.Errorf("combined/plain message ratio = %.2f, want ≈ 2/3", ratio)
	}
}

func TestComparisonShape(t *testing.T) {
	rows, err := Comparison([]int{8, 32}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	// Light load: Schönhage ~2 log n beats round-robin ~n at n=32.
	if large.SchonLight >= large.RRLight {
		t.Errorf("n=32 light: Schönhage %.0f should beat round-robin %.0f",
			large.SchonLight, large.RRLight)
	}
	// Heavy load: Schönhage Θ(n) beats tournament Θ(n log n) at n=32.
	if large.SchonHeavy >= large.TournHeavy {
		t.Errorf("n=32 heavy: Schönhage %.0f should beat tournament %.0f",
			large.SchonHeavy, large.TournHeavy)
	}
	// Growth shapes: tournament heavy grows superlinearly vs n.
	if large.TournHeavy/small.TournHeavy < 4 {
		t.Errorf("tournament heavy growth 8→32 = %.1fx, want ≳ linear×log",
			large.TournHeavy/small.TournHeavy)
	}
}

func TestRunReproducibleBySeed(t *testing.T) {
	tr, err := graph.BinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tree: tr, Holder: tr.NodesOf(graph.Arbiter)[0], Load: Heavy, B: 1, Grants: 10, Seed: 5}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Max != r2.Stats.Max || r1.Steps != r2.Steps {
		t.Error("same seed must reproduce the same run")
	}
}

func TestFarthestHolderFrom(t *testing.T) {
	tr, err := graph.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	u0 := tr.NodesOf(graph.User)[0] // attached to a0
	h := FarthestHolderFrom(tr, u0)
	if tr.Node(h).Name != "a4" {
		t.Errorf("farthest holder = %s, want a4", tr.Node(h).Name)
	}
}

func TestPrintRows(t *testing.T) {
	var sb strings.Builder
	PrintRows(&sb, "title", []Row{{Label: "n=2", N: 2, Max: 1, Bound: 4, WithinB: true}})
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "n=2") {
		t.Errorf("output: %s", out)
	}
	var sb2 strings.Builder
	PrintComparison(&sb2, []CompareRow{{N: 2}})
	if !strings.Contains(sb2.String(), "Schönhage") {
		t.Error("comparison header missing")
	}
}

func TestRunRingShape(t *testing.T) {
	// Token ring: Θ(n) response under both loads.
	light8, err := RunRing(8, Light, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	light32, err := RunRing(32, Light, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if light32.Stats.Max < 2*light8.Stats.Max {
		t.Errorf("ring light response must grow ~linearly: n=8→%.0f, n=32→%.0f",
			light8.Stats.Max, light32.Stats.Max)
	}
	heavy8, err := RunRing(8, Heavy, 1, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	if heavy8.Stats.Max > 12*8 {
		t.Errorf("ring heavy response %.0f not Θ(n) at n=8", heavy8.Stats.Max)
	}
	// Every run is deterministic per seed.
	again, err := RunRing(8, Heavy, 1, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Max != heavy8.Stats.Max {
		t.Error("ring run not reproducible by seed")
	}
}

func TestTheorem50StarConstantDiameter(t *testing.T) {
	// On stars the diameter is 2 regardless of n: the 2bd bound makes
	// light-load response constant even as users multiply.
	rows, err := Theorem50([]int{4, 16, 64}, 1, graph.Star, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.D != 2 {
			t.Fatalf("%s: star diameter %d", r.Label, r.D)
		}
		if !r.WithinB {
			t.Errorf("%s: bound violated", r.Label)
		}
	}
	if rows[2].Max > rows[0].Max+1e-9 {
		t.Errorf("star light-load response must not grow with n: %v vs %v",
			rows[2].Max, rows[0].Max)
	}
}
