package bench

import (
	"fmt"
	"math"

	"repro/internal/arbiter/dist"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/sim"
)

// RunDist measures response times of the fully-distributed arbiter A₃
// (per-process automata plus the FIFO message system) under the same
// b-bounded discipline as the A₂-level runs. The paper performs its
// §3.4 analysis at the A₂ level "for convenience" and notes
// (Chapter 4) that relating complexity across abstraction levels is
// future work; this harness does the comparison experimentally: the A₃
// numbers track the A₂-over-𝒢 bounds, with e(𝒢) = e(G) + (number of
// buffered edges) playing the role of e.
func RunDist(t *graph.Tree, holder int, load Load, b float64, grants int, seed int64) (*Result, error) {
	sys, err := dist.New(t, holder)
	if err != nil {
		return nil, err
	}
	perAction := func(a ioa.Action) string { return string(a) }
	comps := make([]ioa.Automaton, 0, len(sys.Order)+2)
	for _, a := range sys.Order {
		comps = append(comps, sys.Procs[a].Relabel(perAction))
	}
	comps = append(comps, sys.Msg.Relabel(perAction))

	userIDs := t.NodesOf(graph.User)
	for i, u := range userIDs {
		rounds := -1
		if load == Light && i != 0 {
			rounds = 0
		}
		uName := t.Node(u).Name
		aName := t.Node(t.UserAttachment(u)).Name
		comps = append(comps, distUser(uName, aName, rounds).Relabel(perAction))
	}
	closed, err := ioa.Compose("timed-dist", comps...)
	if err != nil {
		return nil, err
	}

	res := &Result{First: math.NaN()}
	pending := make(map[string]float64, len(userIDs))
	observe := func(x *ioa.Execution, now float64) {
		act := x.Acts[len(x.Acts)-1]
		params := act.Params()
		if len(params) != 2 {
			return
		}
		switch act.Base() {
		case "receiverequest":
			// A user's request arriving at its arbiter: from-param is
			// a user name.
			if params[0][0] == 'u' {
				if _, dup := pending[params[0]]; !dup {
					pending[params[0]] = now
				}
			}
		case "sendgrant":
			if params[1][0] == 'u' {
				if t0, ok := pending[params[1]]; ok {
					resp := now - t0
					res.Stats.Grants++
					res.Stats.Sum += resp
					if resp > res.Stats.Max {
						res.Stats.Max = resp
					}
					if math.IsNaN(res.First) {
						res.First = resp
					}
					delete(pending, params[1])
				}
			}
		case "sendrequest", "receivegrant":
			if params[0][0] != 'u' && params[1][0] != 'u' {
				res.EdgeMsgs++
			}
		}
	}
	runner := &sim.TimedRunner{
		Auto:    closed,
		Bounds:  sim.UniformBounds(b),
		Tempo:   sim.Lazy,
		Seed:    seed,
		Observe: observe,
	}
	tx, err := runner.Run(400*grants*(t.EdgeCount()+2), func(*sim.TimedExecution) bool {
		return res.Stats.Grants >= grants
	})
	if err != nil {
		return nil, err
	}
	if res.Stats.Grants < grants {
		return nil, fmt.Errorf("bench: distributed run produced %d/%d grants", res.Stats.Grants, grants)
	}
	res.Steps = tx.Exec.Len()
	res.Duration = tx.Now()
	return res, nil
}

// distUserState is the state of a level-3 user automaton.
type distUserState struct {
	phase string // idle, waiting, holding
	rem   int    // rounds remaining; -1 = forever
}

// Key implements ioa.State.
func (s distUserState) Key() string { return fmt.Sprintf("%s/%d", s.phase, s.rem) }

// distUser is a level-3 user automaton speaking the raw
// receiverequest/sendgrant/receivegrant interface.
func distUser(user, arb string, rounds int) *ioa.Prog {
	d := ioa.NewDef("U_" + user)
	d.Start(distUserState{phase: "idle", rem: rounds})
	d.Output(dist.ReceiveRequest(user, arb), user,
		func(s ioa.State) bool {
			st := s.(distUserState)
			return st.phase == "idle" && st.rem != 0
		},
		func(s ioa.State) ioa.State {
			return distUserState{phase: "waiting", rem: s.(distUserState).rem}
		})
	d.Input(dist.SendGrant(arb, user), func(s ioa.State) ioa.State {
		st := s.(distUserState)
		if st.phase == "waiting" {
			st.phase = "holding"
		}
		return st
	})
	d.Output(dist.ReceiveGrant(user, arb), user,
		func(s ioa.State) bool { return s.(distUserState).phase == "holding" },
		func(s ioa.State) ioa.State {
			st := s.(distUserState)
			st.phase = "idle"
			if st.rem > 0 {
				st.rem--
			}
			return st
		})
	return d.MustBuild()
}

// DistVsGraphRow compares the two levels on one tree.
type DistVsGraphRow struct {
	N        int
	EG       int     // edges of G
	EAug     int     // edges of 𝒢
	A2Max    float64 // A2-over-G heavy-load max response
	A3Max    float64 // A3 heavy-load max response
	BoundAug float64 // 3b·e(𝒢) − b
	Within   bool
}

// DistVsGraph sweeps heavy-load response at both levels of
// abstraction.
func DistVsGraph(sizes []int, b float64, seed int64) ([]DistVsGraphRow, error) {
	var rows []DistVsGraphRow
	for _, n := range sizes {
		tr, err := graph.BinaryTree(n)
		if err != nil {
			return nil, err
		}
		aug, err := graph.Augment(tr)
		if err != nil {
			return nil, err
		}
		holder := tr.NodesOf(graph.Arbiter)[0]
		a2res, err := Run(Config{
			Tree: tr, Holder: holder, Load: Heavy, B: b, Grants: 5 * n, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		a3res, err := RunDist(tr, holder, Heavy, b, 5*n, seed)
		if err != nil {
			return nil, err
		}
		bound := 3*b*float64(aug.EdgeCount()) - b
		rows = append(rows, DistVsGraphRow{
			N: n, EG: tr.EdgeCount(), EAug: aug.EdgeCount(),
			A2Max: a2res.Stats.Max, A3Max: a3res.Stats.Max,
			BoundAug: bound, Within: a3res.Stats.Max <= bound+1e-9,
		})
	}
	return rows, nil
}
