package bench

// Observability overhead sweep (E17): parallel reachability on the
// closed arbiter levels with the observability layer disabled (nil
// *obs.Obs — the production default) versus fully enabled (metrics +
// tracing). The disabled rows are the ones held to the ≤2% regression
// budget against the pre-instrumentation engine; the enabled rows
// price the instrumentation itself. Rows are written to BENCH_obs.json
// by arbiterbench -obs-bench.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/testseed"
)

// ObsRow is one measurement of the observability overhead sweep.
type ObsRow struct {
	// System is the closed system explored (arbiter1..arbiter3).
	System string `json:"system"`
	// Mode is obs-off (nil Obs) or obs-on (metrics + tracing).
	Mode string `json:"mode"`
	// Workers is the exploration pool size.
	Workers int `json:"workers"`
	// States is the number of states reached (identical across modes).
	States int `json:"states"`
	// NS is the best-of-reps wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// OverheadPct is this row's NS relative to the obs-off row on the
	// same system, in percent (0 for obs-off rows).
	OverheadPct float64 `json:"overhead_pct"`
	// TraceEvents is the number of trace events recorded (obs-on only).
	TraceEvents int `json:"trace_events,omitempty"`
}

// ObsConfig parameterizes the sweep.
type ObsConfig struct {
	// Users is the number of leaf users per arbiter instance
	// (default 6 — large enough that the overhead ratio is not noise;
	// see obsMeasure).
	Users int
	// Levels selects the arbiter levels to measure (default 1..3).
	Levels []int
	// Limit bounds each exploration (0 means explore.DefaultLimit).
	Limit int
	// Workers is the exploration pool size (default 2).
	Workers int
	// Reps is how many timed repetitions to take the best of (default
	// 3); each rebuilds the system so memo caches start cold, and an
	// additional untimed warmup repetition runs first.
	Reps int
	// Now supplies the wall clock for timing rows (nil means
	// testseed.Now). The instrumented runs' tracer uses the same
	// clock.
	Now func() time.Time
}

// obsMeasure times one mode on freshly built systems. Repetition -1
// is an untimed warmup: it pays the allocator growth, code-path JIT
// warmup (branch predictors, page faults), and scheduler ramp that
// otherwise lands entirely on the first timed repetition — on
// sub-millisecond systems that one-time cost used to masquerade as
// multi-percent "overhead" (the old arbiter1 20-state row reported
// 5.8% against the ≤2% budget purely from it).
func obsMeasure(level int, cfg ObsConfig, instrumented bool) (ObsRow, error) {
	mode := "obs-off"
	if instrumented {
		mode = "obs-on"
	}
	row := ObsRow{System: fmt.Sprintf("arbiter%d", level), Mode: mode, Workers: cfg.Workers}
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	for r := -1; r < cfg.Reps; r++ {
		a, err := ExploreSystem(level, cfg.Users)
		if err != nil {
			return row, err
		}
		var o *obs.Obs
		if instrumented {
			o = obs.New(cfg.Now)
			ioa.SetObsDeep(a, o)
		}
		eng := explore.New(explore.Options{Workers: cfg.Workers, Limit: cfg.Limit, Obs: o})
		start := now()
		states, err := eng.Reach(context.Background(), a)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil && !errors.Is(err, explore.ErrLimit) {
			return row, err
		}
		if r < 0 {
			continue // warmup: never recorded
		}
		if row.NS == 0 || elapsed < row.NS {
			row.NS = elapsed
		}
		row.States = len(states)
		if instrumented {
			row.TraceEvents = o.Tracer.Len()
		}
	}
	return row, nil
}

// ObsSweep measures obs-off vs obs-on on the configured arbiter
// levels. The state counts must agree between modes (observability
// never changes exploration results); a mismatch is returned as an
// error.
func ObsSweep(cfg ObsConfig) ([]ObsRow, error) {
	if cfg.Users <= 0 {
		// 6 users put even the level-1 sweep in the hundreds of states
		// (256 at arbiter1): large enough that per-run jitter stops
		// dominating the overhead ratio the ≤2% budget is read from.
		cfg.Users = 6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []int{1, 2, 3}
	}
	var rows []ObsRow
	for _, level := range levels {
		off, err := obsMeasure(level, cfg, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, off)
		on, err := obsMeasure(level, cfg, true)
		if err != nil {
			return nil, err
		}
		if on.States != off.States {
			return nil, fmt.Errorf("bench: %s obs-on reached %d states, obs-off %d — observability changed results",
				on.System, on.States, off.States)
		}
		if off.NS > 0 {
			on.OverheadPct = 100 * (float64(on.NS) - float64(off.NS)) / float64(off.NS)
		}
		rows = append(rows, on)
	}
	return rows, nil
}

// WriteObsJSON emits the sweep as indented JSON (BENCH_obs.json).
func WriteObsJSON(w io.Writer, rows []ObsRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// PrintObs renders the sweep as a table.
func PrintObs(w io.Writer, rows []ObsRow) {
	title := "Observability overhead: parallel reachability, obs-off vs obs-on (best-of-reps)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-10s %-8s %8s %8s %12s %10s %8s\n",
		"system", "mode", "workers", "states", "ns", "overhead", "events")
	for _, r := range rows {
		overhead, events := "-", "-"
		if r.Mode == "obs-on" {
			overhead = fmt.Sprintf("%+.1f%%", r.OverheadPct)
			events = fmt.Sprint(r.TraceEvents)
		}
		fmt.Fprintf(w, "%-10s %-8s %8d %8d %12d %10s %8s\n",
			r.System, r.Mode, r.Workers, r.States, r.NS, overhead, events)
	}
	fmt.Fprintln(w)
}
