package bench

// Reachability benchmark sweep over the three arbiter levels
// (E15): sequential exploration with the composition memo disabled
// (the seed baseline), sequential with memo, and the parallel sharded
// explorer at several worker counts. Each row records wall-clock time
// and the speedup against the uncached sequential baseline on the
// same system.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/arbiter/dist"
	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/testseed"
)

// ExploreRow is one measurement of the explore sweep.
type ExploreRow struct {
	// System is the closed system explored: arbiter1, arbiter2, arbiter3.
	System string `json:"system"`
	// Mode is serial-nomemo (seed baseline), serial, or parallel.
	Mode string `json:"mode"`
	// Workers is the pool size for parallel mode, 0 otherwise.
	Workers int `json:"workers,omitempty"`
	// States is the number of states reached (identical across modes).
	States int `json:"states"`
	// Truncated reports that the state budget was hit (partial result).
	Truncated bool `json:"truncated,omitempty"`
	// NS is the best-of-reps wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// Speedup is serial-nomemo NS divided by this row's NS.
	Speedup float64 `json:"speedup"`
}

// ExploreConfig parameterizes the sweep.
type ExploreConfig struct {
	// Users is the number of leaf users in each arbiter instance.
	Users int
	// Limit bounds each exploration (0 means explore.DefaultLimit).
	Limit int
	// Workers are the pool sizes to measure (default 1, 2, 4).
	Workers []int
	// Reps is how many timed repetitions to take the best of
	// (default 3). Every repetition rebuilds the system so the memo
	// caches start cold.
	Reps int
	// Now supplies the wall clock for timing rows (nil means
	// testseed.Now, the repository's sanctioned accessor). Tests
	// inject a fake clock to keep the sweep itself deterministic.
	Now func() time.Time
}

// ExploreSystem builds the closed arbiter system at the given level
// (1, 2, or 3) with n users: the specification, the graph-level
// automaton, or the distributed algorithm over reliable channels,
// each renamed to spec actions and composed with heavy-load users.
func ExploreSystem(level, n int) (ioa.Automaton, error) {
	switch level {
	case 1:
		names := spec.DefaultUsers(n)
		a1 := spec.New(names)
		comps := append([]ioa.Automaton{a1}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose("arbiter1", comps...)
	case 2, 3:
		tr, err := graph.BinaryTree(n)
		if err != nil {
			return nil, err
		}
		return SystemOn(level, tr)
	default:
		return nil, fmt.Errorf("bench: no arbiter level %d", level)
	}
}

// StarSystem builds the closed level-3 distributed arbiter over
// graph.Star(n): a single process automaton with all n users on its
// neighbor circle, composed with heavy-load users. This is the
// maximally symmetric level-3 topology — rotating the users is an
// automorphism of the whole algorithm (Figure 3.5's round-robin
// sendgrant scan is rotation-invariant), so reduce.StarRotation
// quotients its state space by exactly n.
func StarSystem(n int) (ioa.Automaton, error) {
	tr, err := graph.Star(n)
	if err != nil {
		return nil, err
	}
	return SystemOn(3, tr)
}

// SystemOn builds the closed arbiter system at level 2 or 3 over an
// explicit tree topology, renamed to spec actions and composed with
// heavy-load users.
func SystemOn(level int, tr *graph.Tree) (ioa.Automaton, error) {
	var names []string
	for _, u := range tr.NodesOf(graph.User) {
		names = append(names, tr.Node(u).Name)
	}
	holder := tr.NodesOf(graph.Arbiter)[0]
	var arb ioa.Automaton
	switch level {
	case 2:
		a2, err := graphlevel.New(tr, tr.Neighbors(holder)[0], holder)
		if err != nil {
			return nil, err
		}
		arb, err = ioa.Rename(a2, graphlevel.F1(tr))
		if err != nil {
			return nil, err
		}
	case 3:
		aug, err := graph.Augment(tr)
		if err != nil {
			return nil, err
		}
		sys, err := dist.NewWithFaults(tr, holder, faults.Injection{})
		if err != nil {
			return nil, err
		}
		f2, err := sys.F2(aug)
		if err != nil {
			return nil, err
		}
		a3x, err := ioa.Rename(sys.A3, f2)
		if err != nil {
			return nil, err
		}
		arb, err = ioa.Rename(a3x, graphlevel.F1(aug))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: no tree-level arbiter %d", level)
	}
	comps := append([]ioa.Automaton{arb}, users.Automata(users.HeavyLoad(names))...)
	return ioa.Compose(fmt.Sprintf("arbiter%d", level), comps...)
}

// exploreMeasure times one exploration mode on freshly built systems,
// returning the best of reps runs.
func exploreMeasure(level int, cfg ExploreConfig, mode string, workers int) (ExploreRow, error) {
	row := ExploreRow{System: fmt.Sprintf("arbiter%d", level), Mode: mode, Workers: workers}
	limit := cfg.Limit
	if limit <= 0 {
		limit = explore.DefaultLimit
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 3
	}
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	for r := 0; r < reps; r++ {
		a, err := ExploreSystem(level, cfg.Users)
		if err != nil {
			return row, err
		}
		if mode == "serial-nomemo" {
			ioa.SetMemoDeep(a, false)
		}
		var states []ioa.State
		w := workers
		if mode != "parallel" {
			w = 1
		}
		eng := explore.New(explore.Options{Workers: w, Limit: limit})
		start := now()
		states, err = eng.Reach(context.Background(), a)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			if !errors.Is(err, explore.ErrLimit) {
				return row, err
			}
			row.Truncated = true
		}
		if row.NS == 0 || elapsed < row.NS {
			row.NS = elapsed
		}
		row.States = len(states)
	}
	return row, nil
}

// ExploreSweep measures all modes on all three arbiter levels. Rows
// for one system agree on States and Truncated regardless of mode —
// the determinism contract of the parallel engine — and ExploreSweep
// returns an error if they do not.
func ExploreSweep(cfg ExploreConfig) ([]ExploreRow, error) {
	if cfg.Users <= 0 {
		cfg.Users = 3
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	var rows []ExploreRow
	for level := 1; level <= 3; level++ {
		base, err := exploreMeasure(level, cfg, "serial-nomemo", 0)
		if err != nil {
			return nil, err
		}
		base.Speedup = 1
		rows = append(rows, base)
		measure := func(mode string, w int) error {
			row, err := exploreMeasure(level, cfg, mode, w)
			if err != nil {
				return err
			}
			if row.States != base.States || row.Truncated != base.Truncated {
				return fmt.Errorf("bench: %s %s/%d reached %d states (truncated=%t), baseline %d (truncated=%t)",
					row.System, mode, w, row.States, row.Truncated, base.States, base.Truncated)
			}
			row.Speedup = float64(base.NS) / float64(row.NS)
			rows = append(rows, row)
			return nil
		}
		if err := measure("serial", 0); err != nil {
			return nil, err
		}
		for _, w := range workers {
			if err := measure("parallel", w); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// WriteExploreJSON emits the sweep as indented JSON (BENCH_explore.json).
func WriteExploreJSON(w io.Writer, rows []ExploreRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// PrintExplore renders the sweep as a table.
func PrintExplore(w io.Writer, rows []ExploreRow) {
	title := "Reachability: serial vs memoized vs parallel (best-of-reps wall clock)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-10s %-14s %8s %8s %12s %9s\n",
		"system", "mode", "workers", "states", "ns", "speedup")
	for _, r := range rows {
		workers := "-"
		if r.Mode == "parallel" {
			workers = fmt.Sprint(r.Workers)
		}
		states := fmt.Sprint(r.States)
		if r.Truncated {
			states += "+"
		}
		fmt.Fprintf(w, "%-10s %-14s %8s %8s %12d %8.2fx\n",
			r.System, r.Mode, workers, states, r.NS, r.Speedup)
	}
	fmt.Fprintln(w)
}
