package bench

// Inductive-certification sweep (E21): safety certified by one-step
// induction over streamed candidate domains, compared against the
// cost (and the reach) of the reachability engines on the same
// systems. The point of the comparison: reachability proves the
// invariant over the states it can materialize — at most 24,976 in
// any recorded run — while induction certifies over complete
// combinatorial domains (16.7M counter vectors, 9.1M Lamport states)
// in O(1) resident memory, because a failed step needs no history and
// a successful one needs no frontier. Rows are written to
// BENCH_induct.json by arbiterbench -induct-bench.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/domain"
	"repro/internal/explore"
	"repro/internal/induct"
	"repro/internal/ioa"
	"repro/internal/lattice"
	"repro/internal/mutex"
	"repro/internal/ring"
	"repro/internal/testseed"
)

// An InductSystem is one certification workload: an automaton, a
// candidate domain, the full inductive conjunction, and the
// strengthening decomposition (Base plus Library) that rediscovers it
// CTI by CTI.
type InductSystem struct {
	// Name identifies the workload in rows and tests.
	Name string
	// Auto is the certified automaton.
	Auto ioa.Automaton
	// Dom is the candidate domain Check streams.
	Dom domain.Domain
	// Inv is the full inductive conjunction.
	Inv *lattice.Conjunction
	// Base is the certified property alone (typing plus the safety
	// target); Library holds the auxiliary lemmas Strengthen may
	// conjoin to close Base's CTIs. Inv equals Base extended by some
	// subset of Library.
	Base    *lattice.Conjunction
	Library []lattice.Lemma
	// Invariant is the safety predicate for the reachability
	// cross-check (the differential battery).
	Invariant func(ioa.State) bool
}

// arbiter1TypeOK shapes the closed level-1 arbiter state: the spec
// automaton followed by n heavy-load users.
func arbiter1TypeOK(n int) lattice.Lemma {
	return lattice.L("TypeOK", func(st ioa.State) bool {
		ts, ok := st.(*ioa.TupleState)
		if !ok || ts.Len() != n+1 {
			return false
		}
		a1, ok := ts.At(0).(*spec.State)
		if !ok || a1.NumUsers() != n {
			return false
		}
		if h := a1.Holder(); h < -1 || h >= n {
			return false
		}
		for i := 1; i <= n; i++ {
			u, ok := ts.At(i).(*users.State)
			if !ok || u.Remaining() != -1 {
				return false
			}
		}
		return true
	})
}

// holderAgreement is the lemma that makes arbiter1 mutual exclusion
// inductive: a user holding the resource is the one the arbiter's
// holder variable names. Mutex alone is true but not inductive — a
// domain state with a holding user and holder = -1 satisfies it and
// grants a second user in one step; this lemma refutes exactly those
// states.
func holderAgreement(n int) lattice.Lemma {
	return lattice.L("HolderAgreement", func(st ioa.State) bool {
		ts, ok := st.(*ioa.TupleState)
		if !ok {
			return false
		}
		a1, ok := ts.At(0).(*spec.State)
		if !ok {
			return false
		}
		for i := 1; i <= n; i++ {
			if u, ok := ts.At(i).(*users.State); ok && u.Phase() == users.Holding {
				if a1.Holder() != i-1 {
					return false
				}
			}
		}
		return true
	})
}

// userParts returns the three heavy-load user states, one slice per
// user, for tuple domains.
func userParts(n int) [][]ioa.State {
	phases := []ioa.State{
		users.NewState(users.Idle, -1),
		users.NewState(users.Waiting, -1),
		users.NewState(users.Holding, -1),
	}
	parts := make([][]ioa.State, n)
	for i := range parts {
		parts[i] = phases
	}
	return parts
}

// InductArbiter1 builds the closed level-1 arbiter workload: the
// domain is every (spec state) × (user phase)^n combination —
// 2^n·(n+1)·3^n states, 326,592 at n=6 — and the conjunction is
// TypeOK ∧ Mutex ∧ HolderAgreement.
func InductArbiter1(n int) (InductSystem, error) {
	a, err := ExploreSystem(1, n)
	if err != nil {
		return InductSystem{}, err
	}
	var specs []ioa.State
	for mask := 0; mask < 1<<uint(n); mask++ {
		reqs := make([]bool, n)
		for i := 0; i < n; i++ {
			reqs[i] = mask&(1<<uint(i)) != 0
		}
		for h := -1; h < n; h++ {
			specs = append(specs, spec.NewState(reqs, h))
		}
	}
	parts := append([][]ioa.State{specs}, userParts(n)...)
	mutexLemma := lattice.L("Mutex", MutexInvariant)
	ha := holderAgreement(n)
	base := lattice.Conj("Inv", arbiter1TypeOK(n), mutexLemma)
	return InductSystem{
		Name:      fmt.Sprintf("arbiter1(n=%d)", n),
		Auto:      a,
		Dom:       domain.Tuple("arbiter1-typeok", parts),
		Inv:       base.With(ha),
		Base:      base,
		Library:   []lattice.Lemma{ha},
		Invariant: MutexInvariant,
	}, nil
}

// InductDijkstra builds the token-ring closure workload: over the
// full K^n corruption domain, "at least one machine privileged" holds
// everywhere (a pigeonhole fact the engine re-proves as an inductive
// step over all K^n states) and "at most one" carves out exactly the
// legitimate states, whose closure under moves is the inductive step.
// The same closure verdict the stabilize certifier reaches by
// exploration is certified here without building any graph.
func InductDijkstra(n, k int) (InductSystem, error) {
	r, err := ring.NewDijkstra(n, k)
	if err != nil {
		return InductSystem{}, err
	}
	ge1 := lattice.L("AtLeastOnePrivileged", func(st ioa.State) bool {
		return len(r.Privileged(st)) >= 1
	})
	le1 := lattice.L("AtMostOnePrivileged", func(st ioa.State) bool {
		return len(r.Privileged(st)) <= 1
	})
	return InductSystem{
		Name:      fmt.Sprintf("dijkstra(n=%d,K=%d)", n, k),
		Auto:      r.Auto,
		Dom:       r.StateDomain(),
		Inv:       lattice.Conj("Legit", ge1, le1),
		Base:      lattice.Conj("Legit", ge1, le1),
		Invariant: r.Legit,
	}, nil
}

// InductRing builds the LeLann ring workload: the closed token ring
// with heavy-load users over the full 8^n·3^n product of process and
// user phases (13,824 at n=3). User-level mutual exclusion rests on a
// four-lemma chain: the token is unique, a serving process holds it,
// process and user agree on who is being served, and a requesting
// process faces a waiting user (the lemma that keeps a grant from
// landing on an idle user).
func InductRing(n int) (InductSystem, error) {
	names := spec.DefaultUsers(n)
	sys, err := ring.New(names)
	if err != nil {
		return InductSystem{}, err
	}
	comps := append([]ioa.Automaton{sys.Arbiter}, users.Automata(users.HeavyLoad(names))...)
	a, err := ioa.Compose("ring-closed", comps...)
	if err != nil {
		return InductSystem{}, err
	}
	var procs []ioa.State
	for bits := 0; bits < 8; bits++ {
		procs = append(procs, ring.NewProcState(bits&1 != 0, bits&2 != 0, bits&4 != 0))
	}
	var inner []ioa.State
	cur := make([]ioa.State, n)
	var walk func(int)
	walk = func(i int) {
		if i == n {
			inner = append(inner, ioa.NewTupleState(cur))
			return
		}
		for _, p := range procs {
			cur[i] = p
			walk(i + 1)
		}
	}
	walk(0)
	parts := append([][]ioa.State{inner}, userParts(n)...)

	proc := func(st ioa.State, i int) *ring.ProcState {
		return st.(*ioa.TupleState).At(0).(*ioa.TupleState).At(i).(*ring.ProcState)
	}
	user := func(st ioa.State, i int) *users.State {
		return st.(*ioa.TupleState).At(i + 1).(*users.State)
	}
	typeOK := lattice.L("TypeOK", func(st ioa.State) bool {
		ts, ok := st.(*ioa.TupleState)
		if !ok || ts.Len() != n+1 {
			return false
		}
		in, ok := ts.At(0).(*ioa.TupleState)
		if !ok || in.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if _, ok := in.At(i).(*ring.ProcState); !ok {
				return false
			}
			u, ok := ts.At(i + 1).(*users.State)
			if !ok || u.Remaining() != -1 {
				return false
			}
		}
		return true
	})
	userMutex := lattice.L("UserMutex", MutexInvariant)
	tokenUnique := lattice.L("TokenUnique", func(st ioa.State) bool {
		tokens := 0
		for i := 0; i < n; i++ {
			if proc(st, i).HasToken() {
				tokens++
			}
		}
		return tokens == 1
	})
	holderHasToken := lattice.L("HolderHasToken", func(st ioa.State) bool {
		for i := 0; i < n; i++ {
			if p := proc(st, i); p.UserHolding() && !p.HasToken() {
				return false
			}
		}
		return true
	})
	requestAgree := lattice.L("RequestAgree", func(st ioa.State) bool {
		for i := 0; i < n; i++ {
			if proc(st, i).Requesting() && user(st, i).Phase() != users.Waiting {
				return false
			}
		}
		return true
	})
	holdAgree := lattice.L("HoldAgree", func(st ioa.State) bool {
		for i := 0; i < n; i++ {
			if proc(st, i).UserHolding() != (user(st, i).Phase() == users.Holding) {
				return false
			}
		}
		return true
	})
	library := []lattice.Lemma{tokenUnique, holderHasToken, requestAgree, holdAgree}
	base := lattice.Conj("Inv", typeOK, userMutex)
	inv := base
	for _, l := range library {
		inv = inv.With(l)
	}
	return InductSystem{
		Name:      fmt.Sprintf("lelann(n=%d)", n),
		Auto:      a,
		Dom:       domain.Tuple("ring-typeok", parts),
		Inv:       inv,
		Base:      base,
		Library:   library,
		Invariant: MutexInvariant,
	}, nil
}

// InductLamport builds the bounded Lamport mutex workload — the
// headline: the complete TypeOK domain at (2,2,1) has 518,400 states,
// at (2,2,2) 9.1M, against a reachable set of a few dozen.
func InductLamport(n, maxClock, cap int) (InductSystem, error) {
	l, err := mutex.NewLamport(n, maxClock, cap)
	if err != nil {
		return InductSystem{}, err
	}
	return InductSystem{
		Name:      fmt.Sprintf("lamport(n=%d,M=%d,C=%d)", n, maxClock, cap),
		Auto:      l.Auto,
		Dom:       l.Domain(),
		Inv:       l.Inv(),
		Base:      lattice.Conj("Inv", l.TypeOK(), l.MutexLemma()),
		Library:   l.Lemmas(),
		Invariant: func(s ioa.State) bool { return l.InCrit(s) <= 1 },
	}, nil
}

// InductBurns builds Burns' mutex over a reachable domain — relative
// induction: the domain is the reach set itself (closed under steps
// by construction, Contains backed by the interned store), so Check
// certifies any true invariant and the comparison degenerates to
// reachability cost. Included as the bridge case between the two
// methods and as the battery's exercise of the lifted
// domain.Reachable generator.
func InductBurns(opts explore.Options) (InductSystem, error) {
	sys, err := mutex.New()
	if err != nil {
		return InductSystem{}, err
	}
	comps := []ioa.Automaton{sys.Mutex}
	for i := 0; i < 2; i++ {
		i := i
		d := ioa.NewDef("User" + string(rune('0'+i)))
		d.Start(ioa.KeyState("rem"))
		d.Output(mutex.Try(i), "u"+string(rune('0'+i)),
			func(s ioa.State) bool { return s.Key() == "rem" },
			func(ioa.State) ioa.State { return ioa.KeyState("trying") })
		d.Input(mutex.Crit(i), func(s ioa.State) ioa.State { return ioa.KeyState("crit") })
		d.Output(mutex.Exit(i), "u"+string(rune('0'+i)),
			func(s ioa.State) bool { return s.Key() == "crit" },
			func(ioa.State) ioa.State { return ioa.KeyState("exited") })
		d.Input(mutex.Rem(i), func(s ioa.State) ioa.State { return ioa.KeyState("rem") })
		comps = append(comps, d.MustBuild())
	}
	composed, err := ioa.Compose("mutex-closed", comps...)
	if err != nil {
		return InductSystem{}, err
	}
	a := explore.ClosedWorld(composed)
	clientMutex := lattice.L("ClientMutex", func(s ioa.State) bool {
		ts, ok := s.(*ioa.TupleState)
		if !ok {
			return true
		}
		crit := 0
		for i := 1; i < ts.Len(); i++ {
			if ts.At(i).Key() == "crit" {
				crit++
			}
		}
		return crit <= 1
	})
	return InductSystem{
		Name:      "burns(reachable)",
		Auto:      a,
		Dom:       domain.Reachable("reachable", a, nil, opts),
		Inv:       lattice.Conj("Inv", clientMutex),
		Base:      lattice.Conj("Inv", clientMutex),
		Invariant: clientMutex.Pred,
	}, nil
}

// An InductRow is one certification cell: induction cost and verdict
// against reachability cost and reach on the same system.
type InductRow struct {
	System string `json:"system"`
	// Domain names the candidate domain; DomainStates its size as
	// walked, Candidates the subset carrying obligations, Transitions
	// the pushed steps.
	Domain       string `json:"domain"`
	DomainStates int64  `json:"domain_states"`
	Candidates   int64  `json:"candidates"`
	Transitions  int64  `json:"transitions"`
	// Inductive and AdequacyChecked are the certificate verdicts;
	// Conjuncts counts the lemmas of the certified conjunction.
	Inductive       bool `json:"inductive"`
	AdequacyChecked bool `json:"adequacy_checked"`
	Conjuncts       int  `json:"conjuncts"`
	// CertNS is the best-of-reps induction wall time.
	CertNS int64 `json:"cert_ns"`
	// ReachStates and ReachNS are the reachability comparison:
	// explored state count and best-of-reps wall time. ReachStates is
	// -1 when the sweep skipped the comparison.
	ReachStates int   `json:"reach_states"`
	ReachNS     int64 `json:"reach_ns"`
}

// InductConfig parameterizes the sweep.
type InductConfig struct {
	// Workers and Limit configure the reachability comparison engine
	// (and reachable domains).
	Workers int
	Limit   int
	// Reps is how many timed repetitions to take the best of
	// (default 3).
	Reps int
	// Quick drops the multi-million-state rows (CI sanity).
	Quick bool
	// Now supplies the wall clock (nil means testseed.Now).
	Now func() time.Time
}

// inductCell certifies one workload, best-of-reps timed, then runs
// the reachability comparison.
func inductCell(cfg InductConfig, build func() (InductSystem, error)) (InductRow, error) {
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	var row InductRow
	var sys InductSystem
	for r := 0; r < cfg.Reps; r++ {
		var err error
		sys, err = build()
		if err != nil {
			return row, err
		}
		start := now()
		cert, err := induct.Check(context.Background(), sys.Auto, sys.Dom, sys.Inv, induct.Options{})
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			return row, err
		}
		if row.CertNS == 0 || elapsed < row.CertNS {
			row.CertNS = elapsed
		}
		row.System = sys.Name
		row.Domain = sys.Dom.Name()
		row.DomainStates = cert.DomainStates
		row.Candidates = cert.Candidates
		row.Transitions = cert.Transitions
		row.Inductive = cert.Inductive
		row.AdequacyChecked = cert.AdequacyChecked
		row.Conjuncts = sys.Inv.Len()
	}

	row.ReachStates = -1
	eng := explore.New(explore.Options{Workers: cfg.Workers, Limit: cfg.Limit})
	for r := 0; r < cfg.Reps; r++ {
		start := now()
		v, err := eng.CheckInvariant(context.Background(), sys.Auto, sys.Invariant)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			return row, err
		}
		if v != nil {
			return row, fmt.Errorf("bench: induct %s: reachability found an invariant violation at %s",
				sys.Name, v.State.Key())
		}
		if row.ReachNS == 0 || elapsed < row.ReachNS {
			row.ReachNS = elapsed
		}
		states, err := eng.Reach(context.Background(), sys.Auto)
		if err != nil {
			return row, err
		}
		row.ReachStates = len(states)
	}
	return row, nil
}

// InductSweep runs the certification battery.
func InductSweep(cfg InductConfig) ([]InductRow, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	exOpts := explore.Options{Workers: cfg.Workers, Limit: cfg.Limit}
	cells := []func() (InductSystem, error){
		func() (InductSystem, error) { return InductArbiter1(4) },
		func() (InductSystem, error) { return InductArbiter1(6) },
		func() (InductSystem, error) { return InductDijkstra(4, 4) },
		func() (InductSystem, error) { return InductDijkstra(6, 6) },
		func() (InductSystem, error) { return InductRing(3) },
		func() (InductSystem, error) { return InductLamport(2, 2, 1) },
		func() (InductSystem, error) { return InductBurns(exOpts) },
	}
	if !cfg.Quick {
		cells = append(cells,
			func() (InductSystem, error) { return InductDijkstra(8, 8) },
			func() (InductSystem, error) { return InductLamport(2, 2, 2) },
		)
	}
	var rows []InductRow
	for _, build := range cells {
		row, err := inductCell(cfg, build)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintInduct renders the sweep as a table.
func PrintInduct(w io.Writer, rows []InductRow) {
	title := "Inductive certification — streamed domain vs reachability (best-of-reps)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-18s %10s %10s %7s %-5s %4s %10s %8s %10s\n",
		"system", "domain", "cands", "steps", "ind", "conj", "cert-ms", "reach", "reach-ms")
	for _, r := range rows {
		verdict := "FAIL"
		if r.Inductive {
			verdict = "ok"
			if !r.AdequacyChecked {
				verdict = "ok*"
			}
		}
		fmt.Fprintf(w, "%-18s %10d %10d %7d %-5s %4d %10.1f %8d %10.1f\n",
			r.System, r.DomainStates, r.Candidates, r.Transitions, verdict,
			r.Conjuncts, float64(r.CertNS)/1e6, r.ReachStates, float64(r.ReachNS)/1e6)
	}
	fmt.Fprintln(w)
}

// WriteInductJSON writes the rows as indented JSON (BENCH_induct.json).
func WriteInductJSON(w io.Writer, rows []InductRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
