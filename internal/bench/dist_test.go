package bench

import "testing"

func TestDistVsGraphShape(t *testing.T) {
	rows, err := DistVsGraph([]int{2, 4, 8}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, r := range rows {
		if !r.Within {
			t.Errorf("n=%d: A3 max %.1f exceeds 3b·e(𝒢)−b = %.1f", r.N, r.A3Max, r.BoundAug)
		}
		if r.A3Max <= prev {
			t.Errorf("n=%d: A3 heavy response should grow with e", r.N)
		}
		prev = r.A3Max
		// The detailed level tracks the A2-over-G analysis: more edges
		// (buffers) cost more time, but by a bounded factor.
		if r.A3Max < r.A2Max {
			t.Errorf("n=%d: A3 (%.1f) should not beat A2-over-G (%.1f): buffered hops cost time",
				r.N, r.A3Max, r.A2Max)
		}
		if r.A3Max > 3*r.A2Max+10 {
			t.Errorf("n=%d: A3 (%.1f) wildly above A2 (%.1f)", r.N, r.A3Max, r.A2Max)
		}
	}
	t.Logf("A2 vs A3 heavy-load max response: %+v", rows)
}
