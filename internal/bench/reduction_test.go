package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// smallReductionConfig keeps the sweep fast enough for -race CI runs.
func smallReductionConfig() ReductionConfig {
	return ReductionConfig{SpecUsers: []int{3}, TreeUsers: []int{3}, StarUsers: []int{4, 5}}
}

// TestReductionSweepSmall pins the sweep's structural guarantees on
// small instances: verdicts agree across modes (the sweep itself
// errors otherwise), the full rows are the baselines, and the star
// symmetry quotient is exactly n-fold — the rotation action is free,
// so every orbit has exactly n members.
func TestReductionSweepSmall(t *testing.T) {
	rows, err := ReductionSweep(smallReductionConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := map[string]ReductionRow{}
	for _, r := range rows {
		if !r.MutexOK {
			t.Errorf("%s n=%d %s: mutual exclusion reported violated", r.System, r.Users, r.Mode)
		}
		if r.Mode == "full" {
			if r.StateRatio != 1.0 {
				t.Errorf("%s n=%d: full-mode ratio %v, want 1", r.System, r.Users, r.StateRatio)
			}
			full[r.System+"/"+itoa(r.Users)] = r
		}
	}
	for _, r := range rows {
		base, ok := full[r.System+"/"+itoa(r.Users)]
		if !ok {
			t.Fatalf("%s n=%d: no full baseline row", r.System, r.Users)
		}
		if r.States > base.States {
			t.Errorf("%s n=%d %s: %d states exceeds full %d", r.System, r.Users, r.Mode, r.States, base.States)
		}
		if r.System == "arbiter3-star" && (r.Mode == "symmetry" || r.Mode == "both") {
			if r.States*r.Users != base.States {
				t.Errorf("star n=%d %s: %d states, full %d: want exact %d-fold quotient",
					r.Users, r.Mode, r.States, base.States, r.Users)
			}
		}
	}
}

// TestReductionOutputs covers the table and JSON writers.
func TestReductionOutputs(t *testing.T) {
	rows := []ReductionRow{
		{System: "arbiter3-star", Users: 12, Mode: "both", States: 8191,
			NS: 1e6, StateRatio: 12, Speedup: 12.4, MutexOK: true},
	}
	var tbl bytes.Buffer
	PrintReduction(&tbl, rows)
	if !strings.Contains(tbl.String(), "arbiter3-star") || !strings.Contains(tbl.String(), "12.00x") {
		t.Fatalf("table output missing expected fields:\n%s", tbl.String())
	}
	var buf bytes.Buffer
	if err := WriteReductionJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []ReductionRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != rows[0] {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// BenchmarkReductionSweep is the CI sanity hook (-benchtime=1x): one
// full small sweep per iteration, cross-mode verdict checks included.
func BenchmarkReductionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReductionSweep(smallReductionConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
