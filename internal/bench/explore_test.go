package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
)

// TestExploreSweepAgrees runs a small sweep and checks the internal
// consistency ExploreSweep itself enforces (every mode reaches the
// same state count), plus JSON round-tripping.
func TestExploreSweepAgrees(t *testing.T) {
	rows, err := ExploreSweep(ExploreConfig{Users: 2, Reps: 1, Workers: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 systems × (serial-nomemo, serial, parallel@2)
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	var buf bytes.Buffer
	if err := WriteExploreJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []ExploreRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %d vs %d", len(back), len(rows))
	}
	for _, r := range rows {
		if r.States == 0 {
			t.Errorf("%s %s: zero states", r.System, r.Mode)
		}
		if r.NS <= 0 {
			t.Errorf("%s %s: non-positive time", r.System, r.Mode)
		}
	}
}

// TestExploreSystemLevels: the three levels build and their closed
// systems explore to stable, strictly growing state-space sizes.
func TestExploreSystemLevels(t *testing.T) {
	sizes := make([]int, 0, 3)
	for level := 1; level <= 3; level++ {
		a, err := ExploreSystem(level, 2)
		if err != nil {
			t.Fatal(err)
		}
		states, err := explore.New(explore.Options{Workers: 1, Limit: explore.DefaultLimit}).Reach(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(states))
	}
	if !(sizes[0] <= sizes[1] && sizes[1] <= sizes[2]) {
		t.Fatalf("levels should not shrink in state count: %v", sizes)
	}
}

// BenchmarkReachSerialVsParallel times reachability on the closed
// level-1/2/3 arbiters in each mode. The serial-nomemo mode is the
// seed baseline (composition caches disabled); parallel runs the
// sharded engine with the memo on.
func BenchmarkReachSerialVsParallel(b *testing.B) {
	const nUsers = 3
	modes := []struct {
		name    string
		memo    bool
		workers int // 0 = sequential
	}{
		{"serial-nomemo", false, 0},
		{"serial", true, 0},
		{"parallel-2", true, 2},
		{"parallel-4", true, 4},
	}
	for level := 1; level <= 3; level++ {
		for _, m := range modes {
			b.Run(benchName(level, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					a, err := ExploreSystem(level, nUsers)
					if err != nil {
						b.Fatal(err)
					}
					if !m.memo {
						ioa.SetMemoDeep(a, false)
					}
					b.StartTimer()
					var states []ioa.State
					if m.workers > 0 {
						states, err = explore.New(explore.Options{Workers: m.workers}).Reach(context.Background(), a)
					} else {
						states, err = explore.New(explore.Options{Workers: 1, Limit: explore.DefaultLimit}).Reach(context.Background(), a)
					}
					if err != nil {
						b.Fatal(err)
					}
					if len(states) == 0 {
						b.Fatal("no states")
					}
					if i == 0 {
						b.ReportMetric(float64(len(states)), "states")
					}
				}
			})
		}
	}
}

func benchName(level int, mode string) string {
	return "arbiter" + string(rune('0'+level)) + "/" + mode
}
