package bench

// Interned-store benchmark sweep (E18): sequential reachability on the
// closed arbiter levels with the PR-4 seed explorer (string-keyed
// map[string]struct{} dedup, successor slices materialized per step —
// kept as explore.ReferenceReach) versus the interned store-backed
// engine, sequential and parallel. Each row records wall-clock time,
// the speedup against the reference baseline on the same system, and —
// for interned rows — the store's arena footprint, from which
// EXPERIMENTS.md derives the bytes/state accounting. Rows are written
// to BENCH_store.json by arbiterbench -store-bench.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/store"
	"repro/internal/testseed"
)

// StoreRow is one measurement of the store sweep.
type StoreRow struct {
	// System is the closed system explored: arbiter1, arbiter2, arbiter3.
	System string `json:"system"`
	// Mode is reference (PR-4 seed explorer), interned (store-backed
	// sequential engine), or interned-parallel.
	Mode string `json:"mode"`
	// Workers is the pool size for interned-parallel, 0 otherwise.
	Workers int `json:"workers,omitempty"`
	// States is the number of states reached (identical across modes).
	States int `json:"states"`
	// Truncated reports that the state budget was hit (partial result).
	Truncated bool `json:"truncated,omitempty"`
	// NS is the best-of-reps wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// Speedup is reference NS divided by this row's NS.
	Speedup float64 `json:"speedup"`
	// ArenaBytes is the store's encoded payload after interning the
	// full result (interned rows only).
	ArenaBytes int64 `json:"arena_bytes,omitempty"`
	// BytesPerState is ArenaBytes/States rounded to the nearest byte
	// (interned rows only).
	BytesPerState int64 `json:"bytes_per_state,omitempty"`
}

// StoreConfig parameterizes the sweep.
type StoreConfig struct {
	// Users is the number of leaf users per arbiter instance.
	Users int
	// Levels selects the arbiter levels to measure (default 1..3).
	Levels []int
	// Limit bounds each exploration (0 means explore.DefaultLimit).
	Limit int
	// Workers are the pool sizes for the interned-parallel rows
	// (default 4).
	Workers []int
	// Reps is how many timed repetitions to take the best of (default
	// 3); each rebuilds the system so memo caches start cold.
	Reps int
	// Now supplies the wall clock for timing rows (nil means
	// testseed.Now).
	Now func() time.Time
}

// storeMeasure times one mode on freshly built systems.
func storeMeasure(level int, cfg StoreConfig, mode string, workers int) (StoreRow, error) {
	row := StoreRow{System: fmt.Sprintf("arbiter%d", level), Mode: mode, Workers: workers}
	limit := cfg.Limit
	if limit <= 0 {
		limit = explore.DefaultLimit
	}
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	var states []ioa.State
	for r := 0; r < cfg.Reps; r++ {
		a, err := ExploreSystem(level, cfg.Users)
		if err != nil {
			return row, err
		}
		start := now()
		switch mode {
		case "reference":
			states, err = explore.ReferenceReach(a, limit)
		default:
			w := workers
			if mode == "interned" {
				w = 1
			}
			states, err = explore.New(explore.Options{Workers: w, Limit: limit}).Reach(context.Background(), a)
		}
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			if !errors.Is(err, explore.ErrLimit) {
				return row, err
			}
			row.Truncated = true
		}
		if row.NS == 0 || elapsed < row.NS {
			row.NS = elapsed
		}
		row.States = len(states)
	}
	if mode != "reference" && len(states) > 0 {
		// Re-intern the result to account the store footprint exactly
		// (outside the timed region; the explorer's own store is
		// internal to the run).
		st := store.New(store.Options{})
		for _, s := range states {
			st.Intern(s)
		}
		stats := st.Stats()
		row.ArenaBytes = stats.ArenaBytes
		if stats.States > 0 {
			row.BytesPerState = (stats.ArenaBytes + int64(stats.States)/2) / int64(stats.States)
		}
	}
	return row, nil
}

// StoreSweep measures the reference explorer against the interned
// engine on the configured arbiter levels. The state counts must agree
// across modes (the bit-identical-order contract implies equal
// counts); a mismatch is returned as an error.
func StoreSweep(cfg StoreConfig) ([]StoreRow, error) {
	if cfg.Users <= 0 {
		cfg.Users = 3
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []int{1, 2, 3}
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{4}
	}
	var rows []StoreRow
	for _, level := range levels {
		base, err := storeMeasure(level, cfg, "reference", 0)
		if err != nil {
			return nil, err
		}
		base.Speedup = 1
		rows = append(rows, base)
		measure := func(mode string, w int) error {
			row, err := storeMeasure(level, cfg, mode, w)
			if err != nil {
				return err
			}
			if row.States != base.States || row.Truncated != base.Truncated {
				return fmt.Errorf("bench: %s %s/%d reached %d states (truncated=%t), reference %d (truncated=%t)",
					row.System, mode, w, row.States, row.Truncated, base.States, base.Truncated)
			}
			row.Speedup = float64(base.NS) / float64(row.NS)
			rows = append(rows, row)
			return nil
		}
		if err := measure("interned", 0); err != nil {
			return nil, err
		}
		for _, w := range workers {
			if err := measure("interned-parallel", w); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// WriteStoreJSON emits the sweep as indented JSON (BENCH_store.json).
func WriteStoreJSON(w io.Writer, rows []StoreRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// PrintStore renders the sweep as a table.
func PrintStore(w io.Writer, rows []StoreRow) {
	title := "Reachability: reference (string-keyed) vs interned store engine (best-of-reps)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-10s %-18s %8s %8s %12s %9s %10s %7s\n",
		"system", "mode", "workers", "states", "ns", "speedup", "arena", "B/state")
	for _, r := range rows {
		workers, arena, bps := "-", "-", "-"
		if r.Mode == "interned-parallel" {
			workers = fmt.Sprint(r.Workers)
		}
		if r.Mode != "reference" {
			arena = fmt.Sprint(r.ArenaBytes)
			bps = fmt.Sprint(r.BytesPerState)
		}
		states := fmt.Sprint(r.States)
		if r.Truncated {
			states += "+"
		}
		fmt.Fprintf(w, "%-10s %-18s %8s %8s %12d %8.2fx %10s %7s\n",
			r.System, r.Mode, workers, states, r.NS, r.Speedup, arena, bps)
	}
	fmt.Fprintln(w)
}
