package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestStabilizeSweep runs the sweep at its smallest sizes and pins
// the verdicts: Dijkstra stabilizes on both envelopes (with the spot
// bound no worse than the full-envelope bound), the K=n-2 boundary
// row fails convergence while staying closed, and the LeLann crash
// row is the certified-unstable negative control.
func TestStabilizeSweep(t *testing.T) {
	rows, err := StabilizeSweep(StabilizeConfig{Sizes: []int{3, 4}, Workers: 1, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// n=3: full + spot; n=4: full + spot + K=2 negative; lelann.
	if len(rows) != 6 {
		t.Fatalf("rows: got %d, want 6", len(rows))
	}
	byCell := map[string]StabilizeRow{}
	for _, r := range rows {
		key := r.System + "/" + strconv.Itoa(r.N) + "/" + strconv.Itoa(r.K) + "/" + r.Envelope
		byCell[key] = r
		if r.NS <= 0 {
			t.Errorf("%s: non-positive ns %d", key, r.NS)
		}
	}

	full3 := byCell["dijkstra/3/3/all-corruptions"]
	if !full3.Stabilizing || !full3.Bounded || full3.Bound != 2 {
		t.Fatalf("dijkstra n=3 full: %+v", full3)
	}
	if full3.EnvelopeStates != 27 || full3.States != 27 {
		t.Fatalf("dijkstra n=3 full envelope/states: %+v", full3)
	}
	spot3 := byCell["dijkstra/3/3/single-corruption"]
	if !spot3.Stabilizing || !spot3.Bounded {
		t.Fatalf("dijkstra n=3 spot: %+v", spot3)
	}
	if spot3.Bound > full3.Bound {
		t.Fatalf("spot bound %d exceeds full bound %d", spot3.Bound, full3.Bound)
	}
	full4 := byCell["dijkstra/4/4/all-corruptions"]
	if !full4.Stabilizing || full4.Bound != 13 || full4.EnvelopeStates != 256 {
		t.Fatalf("dijkstra n=4 full: %+v", full4)
	}

	neg := byCell["dijkstra/4/2/all-corruptions"]
	if neg.Stabilizing || neg.Converges || !neg.Closed {
		t.Fatalf("dijkstra n=4 K=2 negative: %+v", neg)
	}
	lelann := byCell["lelann/3/0/crash(reset)"]
	if lelann.Stabilizing || lelann.Converges || !lelann.Closed {
		t.Fatalf("lelann negative control: %+v", lelann)
	}
	if lelann.EnvelopeStates == 0 {
		t.Fatalf("lelann envelope empty: %+v", lelann)
	}

	var buf bytes.Buffer
	if err := WriteStabilizeJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []StabilizeRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip rows: %d vs %d", len(back), len(rows))
	}
	if !strings.Contains(buf.String(), `"k_modulus"`) {
		t.Fatal("json missing k_modulus field")
	}

	var tab bytes.Buffer
	PrintStabilize(&tab, rows)
	for _, want := range []string{"dijkstra", "lelann", "FAIL", "single-corruption"} {
		if !strings.Contains(tab.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tab.String())
		}
	}
}
