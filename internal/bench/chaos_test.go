package bench

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
)

// TestChaosSweep runs a small sweep over the Figure 3.2 tree and
// checks the expected survive/degrade/break pattern:
//
//   - fault-free runs of both systems satisfy every property;
//   - the hardened A₃ʳ keeps every property under the lossy+
//     duplicating channel;
//   - the plain A₃ fails under that channel, in one of two ways
//     depending on which message the schedule kills: a dropped
//     request starves a user while every safety property — even the
//     h₂ correspondence — still holds (a pure liveness failure,
//     invisible to possibilities mappings), whereas a dropped grant
//     destroys the token, breaking the Lemma 35 single-root invariant
//     and the refinement itself. The seeds below exhibit both modes.
func TestChaosSweep(t *testing.T) {
	tr, err := graph.Figure32()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Chaos(ChaosConfig{
		Tree:   tr,
		Holder: 0,
		Profiles: []faults.Profile{
			{},
			{Drop: 0.3, Duplicate: 0.15},
		},
		Seeds: []int64{1, 2, 5},
		Steps: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	var sb strings.Builder
	PrintChaos(&sb, rows)
	t.Log("\n" + sb.String())

	allOK := func(r ChaosRow) bool {
		return !r.Starved && r.MutualExclusion && r.Lemma35 && r.Lemma36 &&
			r.Lemma41 && r.RefinesA2 && r.RefinesA1 && r.MaxPending >= 0
	}
	var livenessOnly, safetyBreak bool
	for _, r := range rows {
		served := true
		for _, g := range r.Grants {
			if g == 0 {
				served = false
			}
		}
		switch {
		case r.Profile.Zero():
			if !allOK(r) || !served {
				t.Errorf("fault-free hardened=%t seed=%d: expected every property to hold: %+v",
					r.Hardened, r.Seed, r)
			}
		case r.Hardened:
			if !allOK(r) || !served {
				t.Errorf("hardened under %s seed=%d: expected every property to hold: %+v",
					r.Profile, r.Seed, r)
			}
		default:
			if !r.Starved && r.RefinesA2 {
				t.Errorf("plain A3 under %s seed=%d: expected no-lockout or refinement to break: %+v",
					r.Profile, r.Seed, r)
			}
			if r.Starved && r.RefinesA2 && r.Lemma35 {
				livenessOnly = true
			}
			if !r.Lemma35 && !r.RefinesA2 {
				safetyBreak = true
			}
		}
	}
	if !livenessOnly {
		t.Error("no seed exhibited the liveness-only failure (dropped request: starvation with safety intact)")
	}
	if !safetyBreak {
		t.Error("no seed exhibited the safety failure (dropped grant: token destroyed, Lemma 35 and h2 broken)")
	}
}

// TestChaosPerFaultClass pins down the failure mode of each fault
// class in isolation:
//
//   - drop: the plain A₃ loses no-lockout (a lost request or grant is
//     never resent); A₃ʳ restores it.
//   - dup: the plain A₃ keeps serving users — the defensive
//     receivegrant precondition ignores stale grants arriving in FIFO
//     order — but the *proof* breaks: duplicate messages in transit
//     put phantom arrows in the h₂-image, violating Lemmas 35/36/41
//     and the refinement. A₃ʳ restores the full hierarchy.
//   - delay: the boundary of the hardening. The plain A₃ happens to
//     survive (its channels rarely hold two messages, so overtaking
//     has nothing to overtake), but A₃ʳ's alternating-bit links
//     assume FIFO channels: reordered packets wedge the handshakes,
//     the system halts with requests pending, and h₂ʳ fails — as the
//     Lemma 46 discussion and TestReorderBreaksHardenedArbiter
//     predict.
func TestChaosPerFaultClass(t *testing.T) {
	tr, err := graph.Figure32()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p faults.Profile) (plain, hard ChaosRow) {
		t.Helper()
		rows, err := Chaos(ChaosConfig{
			Tree: tr, Holder: 0,
			Profiles: []faults.Profile{p},
			Seeds:    []int64{1},
			Steps:    4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows[0], rows[1]
	}

	plain, hard := run(faults.Profile{Drop: 0.3})
	if !plain.Starved {
		t.Errorf("drop: expected plain A3 to starve a user: %+v", plain)
	}
	if hard.Starved || !hard.RefinesA1 || !hard.MutualExclusion {
		t.Errorf("drop: expected A3r to restore no-lockout and refinement: %+v", hard)
	}

	plain, hard = run(faults.Profile{Duplicate: 0.15})
	if plain.RefinesA2 || plain.Lemma35 {
		t.Errorf("dup: expected phantom in-transit copies to break h2 and Lemma 35 for plain A3: %+v", plain)
	}
	if plain.Starved || !plain.MutualExclusion {
		t.Errorf("dup: plain A3's observable behavior should survive duplication alone: %+v", plain)
	}
	if hard.Starved || !hard.RefinesA1 || !hard.MutualExclusion {
		t.Errorf("dup: expected A3r to restore the refinement: %+v", hard)
	}

	plain, hard = run(faults.Profile{Delay: 3})
	if plain.Starved || !plain.RefinesA1 {
		t.Errorf("delay: plain A3 should survive bounded overtaking on its sparse channels: %+v", plain)
	}
	if hard.RefinesA2 {
		t.Errorf("delay: expected the FIFO assumption of the alternating-bit links to break h2r: %+v", hard)
	}
	if !hard.Starved {
		t.Errorf("delay: expected the wedged A3r to leave requests unanswered: %+v", hard)
	}
}
