package bench

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/ioa"
)

// TestChaosSweep runs a small sweep over the Figure 3.2 tree and
// checks the expected survive/degrade/break pattern:
//
//   - fault-free runs of both systems satisfy every property;
//   - the hardened A₃ʳ keeps every property under the lossy+
//     duplicating channel;
//   - the plain A₃ fails under that channel, in one of two ways
//     depending on which message the schedule kills: a dropped
//     request starves a user while every safety property — even the
//     h₂ correspondence — still holds (a pure liveness failure,
//     invisible to possibilities mappings), whereas a dropped grant
//     destroys the token, breaking the Lemma 35 single-root invariant
//     and the refinement itself. The seeds below exhibit both modes.
func TestChaosSweep(t *testing.T) {
	tr, err := graph.Figure32()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Chaos(ChaosConfig{
		Tree:   tr,
		Holder: 0,
		Profiles: []faults.Profile{
			{},
			{Drop: 0.3, Duplicate: 0.15},
		},
		Seeds: []int64{1, 2, 5},
		Steps: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	var sb strings.Builder
	PrintChaos(&sb, rows)
	t.Log("\n" + sb.String())

	allOK := func(r ChaosRow) bool {
		return !r.Starved && r.MutualExclusion && r.Lemma35 && r.Lemma36 &&
			r.Lemma41 && r.RefinesA2 && r.RefinesA1 && r.MaxPending >= 0
	}
	var livenessOnly, safetyBreak bool
	for _, r := range rows {
		served := true
		for _, g := range r.Grants {
			if g == 0 {
				served = false
			}
		}
		switch {
		case r.Profile.Zero():
			if !allOK(r) || !served {
				t.Errorf("fault-free hardened=%t seed=%d: expected every property to hold: %+v",
					r.Hardened, r.Seed, r)
			}
		case r.Hardened:
			if !allOK(r) || !served {
				t.Errorf("hardened under %s seed=%d: expected every property to hold: %+v",
					r.Profile, r.Seed, r)
			}
		default:
			if !r.Starved && r.RefinesA2 {
				t.Errorf("plain A3 under %s seed=%d: expected no-lockout or refinement to break: %+v",
					r.Profile, r.Seed, r)
			}
			if r.Starved && r.RefinesA2 && r.Lemma35 {
				livenessOnly = true
			}
			if !r.Lemma35 && !r.RefinesA2 {
				safetyBreak = true
			}
		}
	}
	if !livenessOnly {
		t.Error("no seed exhibited the liveness-only failure (dropped request: starvation with safety intact)")
	}
	if !safetyBreak {
		t.Error("no seed exhibited the safety failure (dropped grant: token destroyed, Lemma 35 and h2 broken)")
	}
}

// TestChaosPerFaultClass pins down the failure mode of each fault
// class in isolation:
//
//   - drop: the plain A₃ loses no-lockout (a lost request or grant is
//     never resent); A₃ʳ restores it.
//   - dup: the plain A₃ keeps serving users — the defensive
//     receivegrant precondition ignores stale grants arriving in FIFO
//     order — but the *proof* breaks: duplicate messages in transit
//     put phantom arrows in the h₂-image, violating Lemmas 35/36/41
//     and the refinement. A₃ʳ restores the full hierarchy.
//   - delay: the boundary of the hardening. The plain A₃ happens to
//     survive (its channels rarely hold two messages, so overtaking
//     has nothing to overtake), but A₃ʳ's alternating-bit links
//     assume FIFO channels: reordered packets wedge the handshakes,
//     the system halts with requests pending, and h₂ʳ fails — as the
//     Lemma 46 discussion and TestReorderBreaksHardenedArbiter
//     predict.
func TestChaosPerFaultClass(t *testing.T) {
	tr, err := graph.Figure32()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p faults.Profile) (plain, hard ChaosRow) {
		t.Helper()
		rows, err := Chaos(ChaosConfig{
			Tree: tr, Holder: 0,
			Profiles: []faults.Profile{p},
			Seeds:    []int64{1},
			Steps:    4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows[0], rows[1]
	}

	plain, hard := run(faults.Profile{Drop: 0.3})
	if !plain.Starved {
		t.Errorf("drop: expected plain A3 to starve a user: %+v", plain)
	}
	if hard.Starved || !hard.RefinesA1 || !hard.MutualExclusion {
		t.Errorf("drop: expected A3r to restore no-lockout and refinement: %+v", hard)
	}

	plain, hard = run(faults.Profile{Duplicate: 0.15})
	if plain.RefinesA2 || plain.Lemma35 {
		t.Errorf("dup: expected phantom in-transit copies to break h2 and Lemma 35 for plain A3: %+v", plain)
	}
	if plain.Starved || !plain.MutualExclusion {
		t.Errorf("dup: plain A3's observable behavior should survive duplication alone: %+v", plain)
	}
	if hard.Starved || !hard.RefinesA1 || !hard.MutualExclusion {
		t.Errorf("dup: expected A3r to restore the refinement: %+v", hard)
	}

	plain, hard = run(faults.Profile{Delay: 3})
	if plain.Starved || !plain.RefinesA1 {
		t.Errorf("delay: plain A3 should survive bounded overtaking on its sparse channels: %+v", plain)
	}
	if hard.RefinesA2 {
		t.Errorf("delay: expected the FIFO assumption of the alternating-bit links to break h2r: %+v", hard)
	}
	if !hard.Starved {
		t.Errorf("delay: expected the wedged A3r to leave requests unanswered: %+v", hard)
	}
}

// TestDefaultChaosProfilesGolden pins the default sweep list: profile
// order and rendering are part of the bench artifact format
// (BENCH_*.json readers and CI log diffs key on them).
func TestDefaultChaosProfilesGolden(t *testing.T) {
	want := []string{
		"none",
		"drop=0.1",
		"drop=0.3",
		"dup=0.15",
		"drop=0.3,dup=0.15",
		"crash=0.1",
	}
	got := DefaultChaosProfiles()
	if len(got) != len(want) {
		t.Fatalf("%d default profiles, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.String() != want[i] {
			t.Errorf("profile %d renders %q, want %q", i, p, want[i])
		}
	}
}

// TestChaosRecoveryCriterion runs a small sweep with the
// recovers-within-k acceptance window: fault-free cells recover by
// definition (no outage, bounded gaps), and the verdict fields are
// consistent with the measurements.
func TestChaosRecoveryCriterion(t *testing.T) {
	tr, err := graph.Figure32()
	if err != nil {
		t.Fatal(err)
	}
	const k = 60
	rows, err := Chaos(ChaosConfig{
		Tree:          tr,
		Holder:        0,
		Profiles:      []faults.Profile{{}, {Crash: 0.1}},
		Seeds:         []int64{1},
		Steps:         2000,
		RecoverWithin: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RecoverWithin != k {
			t.Fatalf("window not echoed: %d", r.RecoverWithin)
		}
		want := r.MaxOutage <= k && r.MaxServiceGap <= k
		if r.Recovered != want {
			t.Fatalf("%s seed %d: recovered=%t but outage=%d gap=%d window=%d",
				r.Profile, r.Seed, r.Recovered, r.MaxOutage, r.MaxServiceGap, k)
		}
		if r.Profile.Zero() {
			if r.MaxOutage != 0 {
				t.Fatalf("fault-free cell has outage %d", r.MaxOutage)
			}
			if !r.Recovered {
				t.Fatalf("fault-free cell failed recovery: gap=%d", r.MaxServiceGap)
			}
		}
	}
}

func TestLongestFalseRun(t *testing.T) {
	cases := []struct {
		in   []bool
		want int
	}{
		{nil, 0},
		{[]bool{true, true}, 0},
		{[]bool{false}, 1},
		{[]bool{true, false, false, true, false}, 2},
		{[]bool{false, false, true, false, false, false}, 3},
	}
	for _, c := range cases {
		if got := longestFalseRun(c.in); got != c.want {
			t.Errorf("longestFalseRun(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestChaosServiceGap(t *testing.T) {
	names := []string{"u", "v"}
	req := func(n string) ioa.Action { return ioa.Act("request", n) }
	grant := func(n string) ioa.Action { return ioa.Act("grant", n) }
	other := ioa.Act("token", "0", "1")
	cases := []struct {
		acts []ioa.Action
		want int
	}{
		{nil, 0},
		// No pending request: internal churn is not a gap.
		{[]ioa.Action{other, other, other}, 0},
		// Request served after two steps of churn.
		{[]ioa.Action{req("u"), other, other, grant("u")}, 2},
		// A grant to anyone resets the gap even while u stays pending.
		{[]ioa.Action{req("u"), other, req("v"), grant("v"), other, other, grant("u")}, 2},
		// Unserved tail counts in full.
		{[]ioa.Action{req("u"), other, other, other}, 3},
	}
	for i, c := range cases {
		if got := chaosServiceGap(names, c.acts); got != c.want {
			t.Errorf("case %d: gap = %d, want %d", i, got, c.want)
		}
	}
}
