package bench

// External-memory & distributed exploration sweep (E23): the grid
// scale harness explored three ways — in-RAM engine, disk-spilling
// external census, and the multi-process cluster at several process
// counts — with every mode pinned to the grid's closed-form state
// count and depth. Rows are written to BENCH_dist.json by arbiterbench
// -sweep dist; the committed file additionally carries the standalone
// ≥10⁸-state headline run recorded in EXPERIMENTS.md E23.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/explore"
	"repro/internal/grid"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/testseed"
)

// DistRow is one measurement of the external/distributed sweep.
type DistRow struct {
	// System is the grid shape explored (grid-<m>x<k>).
	System string `json:"system"`
	// Mode is ram, spill, or cluster.
	Mode string `json:"mode"`
	// Procs is the worker-process count (cluster rows).
	Procs int `json:"procs,omitempty"`
	// States is the admitted-state count (identical across modes and
	// equal to the closed form m^k).
	States int64 `json:"states"`
	// Depth is the BFS depth (closed form k·(m-1)).
	Depth int64 `json:"depth"`
	// NS is the wall-clock time in nanoseconds (best of reps).
	NS int64 `json:"ns"`
	// MemBudgetBytes is the spill RAM budget (spill rows).
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// SpilledBytes is the on-disk sorted-run volume at completion.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	// SpillRuns is the sorted-run count at completion.
	SpillRuns int64 `json:"spill_runs,omitempty"`
	// BarrierWaitNS totals worker time blocked at level barriers
	// (cluster rows).
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
	// PerRank is each rank's shard size (cluster rows — the balance
	// evidence).
	PerRank []int64 `json:"per_rank,omitempty"`
	// MaxRSSKB is the peak resident set of the standalone headline run
	// (VmHWM from /proc/<pid>/status, headline entry only).
	MaxRSSKB int64 `json:"max_rss_kb,omitempty"`
}

// DistReport is the BENCH_dist.json schema: the sweep rows plus the
// optional standalone headline run.
type DistReport struct {
	// Headline is the ≥10⁸-state external census run (E23), recorded
	// from a standalone ioasim invocation rather than re-run by the
	// sweep.
	Headline *DistRow  `json:"headline,omitempty"`
	Rows     []DistRow `json:"rows"`
}

// DistConfig parameterizes the sweep.
type DistConfig struct {
	// Base and Digits select the grid shape (default 10×5 — 100k
	// states; with Quick, 10×3).
	Base, Digits int
	// Procs are the cluster worker counts to measure (default 1, 2, 4).
	Procs []int
	// MemBudget is the spill RAM budget in bytes (default 64 KiB, so
	// even the quick shape genuinely spills).
	MemBudget int64
	// SpillDir receives the spill runs (default the OS temp dir; each
	// run gets a private subdirectory).
	SpillDir string
	// Reps is how many timed repetitions to take the best of
	// (default 2).
	Reps int
	// Quick shrinks the shape for smoke testing.
	Quick bool
	// Now supplies the wall clock (nil means testseed.Now).
	Now func() time.Time
}

// DistSweep measures the three exploration modes on the configured
// grid. Every row's state count and depth are checked against the
// closed forms, so a silent divergence in any backend fails the sweep
// rather than producing a wrong row.
func DistSweep(cfg DistConfig) ([]DistRow, error) {
	if cfg.Base <= 0 {
		cfg.Base = 10
	}
	if cfg.Digits <= 0 {
		cfg.Digits = 5
	}
	if cfg.Quick {
		cfg.Base, cfg.Digits = 10, 3
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1, 2, 4}
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 64 << 10
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 2
	}
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}

	g, err := grid.New(cfg.Base, cfg.Digits)
	if err != nil {
		return nil, err
	}
	wantStates, wantDepth := g.States(), g.Depth()
	check := func(row DistRow) (DistRow, error) {
		if row.States != wantStates || row.Depth != wantDepth {
			return row, fmt.Errorf("bench: %s %s reached %d states depth %d, closed form %d/%d",
				row.System, row.Mode, row.States, row.Depth, wantStates, wantDepth)
		}
		return row, nil
	}

	var rows []DistRow

	ram := DistRow{System: g.Name(), Mode: "ram"}
	for r := 0; r < cfg.Reps; r++ {
		eng := explore.New(explore.Options{Workers: 2, Limit: int(wantStates)})
		start := now()
		states, err := eng.Reach(context.Background(), g)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			return nil, err
		}
		sum, err := eng.Census(context.Background(), g, nil, nil)
		if err != nil {
			return nil, err
		}
		ram.States, ram.Depth = int64(len(states)), sum.Depth
		if ram.NS == 0 || elapsed < ram.NS {
			ram.NS = elapsed
		}
	}
	ram, err = check(ram)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ram)

	spill := DistRow{System: g.Name(), Mode: "spill", MemBudgetBytes: cfg.MemBudget}
	for r := 0; r < cfg.Reps; r++ {
		dir, cleanup, err := spillDir(cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		o := obs.New(cfg.Now)
		eng := explore.New(explore.Options{
			Workers: 1,
			Limit:   int(wantStates),
			Spill:   &store.SpillOptions{Dir: dir, MemBudget: cfg.MemBudget},
			Decode:  g.Decode,
			Obs:     o,
		})
		start := now()
		sum, err := eng.Census(context.Background(), g, nil, nil)
		elapsed := now().Sub(start).Nanoseconds()
		if cerr := cleanup(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		spill.States, spill.Depth = sum.States, sum.Depth
		if spill.NS == 0 || elapsed < spill.NS {
			spill.NS = elapsed
		}
		snap := o.Reg.Snapshot()
		spill.SpilledBytes = snap.Gauges["store.spilled_bytes"]
		spill.SpillRuns = snap.Gauges["store.spill_runs"]
	}
	spill, err = check(spill)
	if err != nil {
		return nil, err
	}
	rows = append(rows, spill)

	for _, procs := range cfg.Procs {
		row := DistRow{System: g.Name(), Mode: "cluster", Procs: procs}
		for r := 0; r < cfg.Reps; r++ {
			res, elapsed, err := distCluster(g, procs, now)
			if err != nil {
				return nil, err
			}
			row.States, row.Depth = res.States, res.Depth
			row.PerRank = res.PerRank
			row.BarrierWaitNS = res.BarrierWaitNS
			if row.NS == 0 || elapsed < row.NS {
				row.NS = elapsed
			}
		}
		row, err = check(row)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// spillDir makes a private spill directory under base (or the OS temp
// dir) and returns its cleanup.
func spillDir(base string) (string, func() error, error) {
	dir, err := os.MkdirTemp(base, "bench-spill-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() error { return os.RemoveAll(dir) }, nil
}

// distCluster runs one in-process cluster exploration of g: the
// coordinator and procs workers are goroutines over real localhost
// TCP, exactly the protocol the multi-process CLI mode speaks.
func distCluster(g *grid.Grid, procs int, now func() time.Time) (cluster.Result, int64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cluster.Result{}, 0, err
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		return cluster.Result{}, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := cluster.Config{
		Addr:  addr,
		Procs: procs,
		Build: func() (ioa.Automaton, error) { return g, nil },
	}
	start := now()
	var (
		res     cluster.Result
		coorErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, coorErr = cluster.Coordinate(ctx, cfg)
	}()
	workErrs := make([]error, procs)
	var wwg sync.WaitGroup
	for rank := 0; rank < procs; rank++ {
		wwg.Add(1)
		go func(rank int) {
			defer wwg.Done()
			for try := 0; try < 100; try++ {
				err := cluster.Work(ctx, cfg)
				if err == nil || !strings.Contains(err.Error(), "connection refused") {
					workErrs[rank] = err
					return
				}
				select {
				case <-ctx.Done():
					workErrs[rank] = ctx.Err()
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}(rank)
	}
	wwg.Wait()
	wg.Wait()
	elapsed := now().Sub(start).Nanoseconds()
	if coorErr != nil {
		return res, elapsed, coorErr
	}
	for rank, err := range workErrs {
		if err != nil {
			return res, elapsed, fmt.Errorf("bench: cluster rank %d: %w", rank, err)
		}
	}
	return res, elapsed, nil
}

// WriteDistJSON emits the sweep as an indented DistReport
// (BENCH_dist.json); headline may be nil.
func WriteDistJSON(w io.Writer, headline *DistRow, rows []DistRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(DistReport{Headline: headline, Rows: rows})
}

// PrintDist renders the sweep as a table.
func PrintDist(w io.Writer, rows []DistRow) {
	title := "External memory & distributed exploration: grid census by backend (best-of-reps)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-12s %-8s %6s %10s %6s %12s %14s %6s\n",
		"system", "mode", "procs", "states", "depth", "ns", "spilled", "runs")
	for _, r := range rows {
		procs, spilled, runs := "-", "-", "-"
		if r.Procs > 0 {
			procs = fmt.Sprint(r.Procs)
		}
		if r.Mode == "spill" {
			spilled = fmt.Sprint(r.SpilledBytes)
			runs = fmt.Sprint(r.SpillRuns)
		}
		fmt.Fprintf(w, "%-12s %-8s %6s %10d %6d %12d %14s %6s\n",
			r.System, r.Mode, procs, r.States, r.Depth, r.NS, spilled, runs)
	}
	fmt.Fprintln(w)
}
