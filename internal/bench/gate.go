package bench

// The bench-trajectory regression gate (arbiterbench -bench-gate):
// the committed BENCH_*.json files are not documentation, they are an
// enforced observability signal. The gate re-runs the cheap sweeps
// (obs, explore) with the same canonical configurations the committed
// files were produced with and compares row by row — state counts
// must match exactly (the engines are deterministic, so any drift is
// a real behavioral change), wall times may drift only within a noise
// threshold (machines differ; order-of-magnitude regressions do not).
// The expensive certification files (store, stabilize, induct,
// reduction) are validated structurally: they must parse, their
// verdicts must be internally consistent, and the negative controls
// must still be present. EXPERIMENTS.md E22 records the thresholds.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// GateConfig parameterizes the regression gate.
type GateConfig struct {
	// Dir is the directory holding the committed BENCH_*.json files
	// (default ".").
	Dir string
	// Threshold is the tolerated wall-clock slowdown ratio: a fresh
	// measurement regresses when fresh·Handicap > base·Threshold.
	// Default 5 — generous enough for cross-machine noise, tight
	// enough to catch an accidental O(n²) on the hot path.
	Threshold float64
	// Handicap multiplies fresh wall times before the comparison.
	// 1 (the default) for real gating; large values are the CI
	// negative arm, proving the gate can fail.
	Handicap float64
	// Reps is the fresh sweeps' repetition count (default 1: the
	// committed numbers are best-of-3, the threshold absorbs the
	// difference).
	Reps int
	// Now supplies the wall clock for the fresh sweeps (nil means
	// testseed.Now).
	Now func() time.Time
}

// A GateCheck is one verdict of the gate: a (file, row, aspect)
// triple with pass/fail and human-readable evidence.
type GateCheck struct {
	File   string `json:"file"`
	Key    string `json:"key"`
	Aspect string `json:"aspect"` // "states", "wall", "verdict", "schema"
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// A GateResult aggregates the gate's checks.
type GateResult struct {
	Checks      []GateCheck `json:"checks"`
	Regressions int         `json:"regressions"`
}

// A TrajectoryPoint is one committed or fresh measurement in gate
// form: a row identity, an exact signal (the deterministic state
// count), and a noisy signal (wall ns).
type TrajectoryPoint struct {
	Key    string
	States int64
	NS     int64
}

// CompareTrajectory compares fresh measurements against a committed
// baseline point by point: every baseline key must be present fresh,
// state counts must match exactly, and fresh·handicap must stay
// within threshold× the committed wall time. Extra fresh keys are
// ignored — the baseline defines the contract.
func CompareTrajectory(file string, base, fresh []TrajectoryPoint, threshold, handicap float64) []GateCheck {
	byKey := make(map[string]TrajectoryPoint, len(fresh))
	for _, p := range fresh {
		byKey[p.Key] = p
	}
	var checks []GateCheck
	for _, b := range base {
		f, ok := byKey[b.Key]
		if !ok {
			checks = append(checks, GateCheck{File: file, Key: b.Key, Aspect: "states",
				Detail: "row missing from fresh sweep"})
			continue
		}
		sc := GateCheck{File: file, Key: b.Key, Aspect: "states", OK: f.States == b.States}
		if !sc.OK {
			sc.Detail = fmt.Sprintf("states %d, committed %d — deterministic signal drifted", f.States, b.States)
		}
		checks = append(checks, sc)
		adjusted := float64(f.NS) * handicap
		wc := GateCheck{File: file, Key: b.Key, Aspect: "wall",
			OK: adjusted <= float64(b.NS)*threshold}
		if !wc.OK {
			wc.Detail = fmt.Sprintf("wall %.0fns (handicap %.0fx) exceeds committed %dns × threshold %.1f",
				adjusted, handicap, b.NS, threshold)
		} else {
			wc.Detail = fmt.Sprintf("wall %dns vs committed %dns", f.NS, b.NS)
		}
		checks = append(checks, wc)
	}
	return checks
}

// obsPoints projects obs sweep rows into gate form.
func obsPoints(rows []ObsRow) []TrajectoryPoint {
	out := make([]TrajectoryPoint, len(rows))
	for i, r := range rows {
		out[i] = TrajectoryPoint{
			Key:    fmt.Sprintf("%s/%s/w%d", r.System, r.Mode, r.Workers),
			States: int64(r.States),
			NS:     r.NS,
		}
	}
	return out
}

// explorePoints projects explore sweep rows into gate form.
func explorePoints(rows []ExploreRow) []TrajectoryPoint {
	out := make([]TrajectoryPoint, len(rows))
	for i, r := range rows {
		out[i] = TrajectoryPoint{
			Key:    fmt.Sprintf("%s/%s/w%d", r.System, r.Mode, r.Workers),
			States: int64(r.States),
			NS:     r.NS,
		}
	}
	return out
}

// readBench decodes one committed BENCH file into rows.
func readBench[T any](dir, name string) ([]T, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []T
	if err := json.NewDecoder(f).Decode(&rows); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", name)
	}
	return rows, nil
}

// GateObsConfig is the canonical configuration BENCH_obs.json is
// produced with; the gate re-runs it so fresh rows align with the
// committed rows. Regenerate the file with the arbiterbench
// -obs-bench defaults, which match.
func GateObsConfig(reps int, now func() time.Time) ObsConfig {
	return ObsConfig{Users: 6, Workers: 2, Reps: reps, Now: now}
}

// GateExploreConfig is the canonical configuration BENCH_explore.json
// is produced with (the arbiterbench -explore defaults).
func GateExploreConfig(reps int, now func() time.Time) ExploreConfig {
	return ExploreConfig{Users: 6, Reps: reps, Now: now}
}

// Gate runs the full bench-trajectory regression gate against the
// committed BENCH_*.json files in cfg.Dir. An error means the gate
// could not run (missing or malformed file, sweep failure); a clean
// run with regressions is a nil error and Regressions > 0.
func Gate(cfg GateConfig) (GateResult, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Handicap <= 0 {
		cfg.Handicap = 1
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	var res GateResult

	baseObs, err := readBench[ObsRow](cfg.Dir, "BENCH_obs.json")
	if err != nil {
		return res, err
	}
	freshObs, err := ObsSweep(GateObsConfig(cfg.Reps, cfg.Now))
	if err != nil {
		return res, fmt.Errorf("gate: obs sweep: %w", err)
	}
	res.Checks = append(res.Checks,
		CompareTrajectory("BENCH_obs.json", obsPoints(baseObs), obsPoints(freshObs), cfg.Threshold, cfg.Handicap)...)

	baseExplore, err := readBench[ExploreRow](cfg.Dir, "BENCH_explore.json")
	if err != nil {
		return res, err
	}
	freshExplore, err := ExploreSweep(GateExploreConfig(cfg.Reps, cfg.Now))
	if err != nil {
		return res, fmt.Errorf("gate: explore sweep: %w", err)
	}
	res.Checks = append(res.Checks,
		CompareTrajectory("BENCH_explore.json", explorePoints(baseExplore), explorePoints(freshExplore), cfg.Threshold, cfg.Handicap)...)

	structural, err := ValidateTrajectories(cfg.Dir)
	if err != nil {
		return res, err
	}
	res.Checks = append(res.Checks, structural...)

	for _, c := range res.Checks {
		if !c.OK {
			res.Regressions++
		}
	}
	return res, nil
}

// ValidateTrajectories runs the structural half of the gate: the
// certification BENCH files are too expensive to re-run per push, but
// they must parse, their verdicts must be internally consistent, and
// the negative controls that prove the certifiers can reject must
// still be present.
func ValidateTrajectories(dir string) ([]GateCheck, error) {
	var checks []GateCheck

	storeRows, err := readBench[StoreRow](dir, "BENCH_store.json")
	if err != nil {
		return nil, err
	}
	perSystem := make(map[string]int)
	for _, r := range storeRows {
		key := fmt.Sprintf("%s/%s/w%d", r.System, r.Mode, r.Workers)
		c := GateCheck{File: "BENCH_store.json", Key: key, Aspect: "verdict", OK: r.States > 0 && r.NS > 0}
		if !c.OK {
			c.Detail = "empty measurement"
		}
		if prev, seen := perSystem[r.System]; seen && prev != r.States {
			c.OK = false
			c.Detail = fmt.Sprintf("states %d disagree with same-system rows (%d) — determinism contract broken", r.States, prev)
		}
		perSystem[r.System] = r.States
		checks = append(checks, c)
	}

	stabRows, err := readBench[StabilizeRow](dir, "BENCH_stabilize.json")
	if err != nil {
		return nil, err
	}
	negatives := 0
	for _, r := range stabRows {
		key := fmt.Sprintf("%s/n%d/%s", r.System, r.N, r.Envelope)
		c := GateCheck{File: "BENCH_stabilize.json", Key: key, Aspect: "verdict",
			OK: r.Stabilizing == (r.Closed && r.Converges)}
		if !c.OK {
			c.Detail = fmt.Sprintf("stabilizing=%t inconsistent with closed=%t && converges=%t",
				r.Stabilizing, r.Closed, r.Converges)
		}
		if !r.Stabilizing {
			negatives++
		}
		checks = append(checks, c)
	}
	nc := GateCheck{File: "BENCH_stabilize.json", Key: "(sweep)", Aspect: "verdict", OK: negatives > 0}
	if !nc.OK {
		nc.Detail = "no negative-control row: every system certified stabilizing"
	}
	checks = append(checks, nc)

	inductRows, err := readBench[InductRow](dir, "BENCH_induct.json")
	if err != nil {
		return nil, err
	}
	for _, r := range inductRows {
		key := fmt.Sprintf("%s/%s", r.System, r.Domain)
		c := GateCheck{File: "BENCH_induct.json", Key: key, Aspect: "verdict",
			OK: r.Inductive && r.Conjuncts > 0 && r.DomainStates >= r.Candidates && r.Candidates > 0}
		if !c.OK {
			c.Detail = fmt.Sprintf("inductive=%t conjuncts=%d domain=%d candidates=%d",
				r.Inductive, r.Conjuncts, r.DomainStates, r.Candidates)
		}
		checks = append(checks, c)
	}

	reductionRows, err := readBench[ReductionRow](dir, "BENCH_reduction.json")
	if err != nil {
		return nil, err
	}
	for _, r := range reductionRows {
		key := fmt.Sprintf("%s/u%d/%s", r.System, r.Users, r.Mode)
		c := GateCheck{File: "BENCH_reduction.json", Key: key, Aspect: "verdict",
			OK: r.MutexOK && r.StateRatio >= 1}
		if !c.OK {
			c.Detail = fmt.Sprintf("mutex_ok=%t state_ratio=%.2f", r.MutexOK, r.StateRatio)
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// PrintGate renders the gate result: failing checks in full, passing
// checks as a per-file tally.
func PrintGate(w io.Writer, res GateResult) {
	title := fmt.Sprintf("Bench-trajectory gate: %d checks, %d regressions", len(res.Checks), res.Regressions)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	passed := make(map[string]int)
	for _, c := range res.Checks {
		if c.OK {
			passed[c.File]++
			continue
		}
		fmt.Fprintf(w, "FAIL %-22s %-28s %-8s %s\n", c.File, c.Key, c.Aspect, c.Detail)
	}
	for _, file := range []string{"BENCH_obs.json", "BENCH_explore.json", "BENCH_store.json",
		"BENCH_stabilize.json", "BENCH_induct.json", "BENCH_reduction.json"} {
		if n := passed[file]; n > 0 {
			fmt.Fprintf(w, "ok   %-22s %d checks\n", file, n)
		}
	}
	fmt.Fprintln(w)
}
