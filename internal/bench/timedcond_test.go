package bench

import (
	"testing"

	"repro/internal/arbiter/graphlevel"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/proof"
	"repro/internal/sim"
)

// TestBndedConditionsOnLazyRun checks the §3.4 timed conditions
// explicitly on a recorded b-bounded run: BndedFwdReq₂, BndedFwdGr₂,
// and BndedRtnRes₂ all hold within a small constant factor of b.
//
// The factor exists because a condition's discharging action can be
// preempted: while grant(a,y₁) waits out its bound, a request from a
// closer neighbor y₀ ∈ (w,y₁) can arrive and redirect the grant —
// restarting the per-class clock. Each preemption is itself a
// T-action-enabling event, and the chain is bounded by the node's
// degree, so bound = deg·b is safe; we check with 3b on binary trees.
func TestBndedConditionsOnLazyRun(t *testing.T) {
	tr, err := graph.BinaryTree(6)
	if err != nil {
		t.Fatal(err)
	}
	const b = 1.0
	res, err := Run(Config{
		Tree:   tr,
		Holder: tr.NodesOf(graph.Arbiter)[0],
		Load:   Heavy,
		B:      b,
		Grants: 40,
		Seed:   3,
		Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tx == nil {
		t.Fatal("Record did not keep the execution")
	}
	// The run itself must be b-bounded per class.
	if err := sim.CheckBBounded(res.Tx, sim.UniformBounds(b), 1e-9); err != nil {
		t.Fatalf("not b-bounded: %v", err)
	}

	// Lift the A2-state conditions to the composite state via Lemma 34
	// (component 0 is the renamed arbiter; f1 leaves states alone).
	var conds []*proof.LeadsTo
	for _, c := range graphlevel.C2(tr) {
		conds = append(conds, proof.OnComponent(0, translateT(tr, c)))
	}
	for _, u := range tr.NodesOf(graph.User) {
		conds = append(conds, proof.OnComponent(0, translateT(tr, graphlevel.RtnRes2(tr, u))))
	}
	timed := sim.BoundedAll(conds, 3*b)
	if err := sim.CheckTimedLeadsTo(res.Tx, timed, 1e-9); err != nil {
		t.Errorf("timed condition violated: %v", err)
	}
	// Report tightness.
	lat := sim.TimedLatency(res.Tx, timed)
	worstName, worst := "", 0.0
	for name, l := range lat {
		if l > worst {
			worstName, worst = name, l
		}
	}
	t.Logf("worst observed condition latency: %s = %.1f (bound %.1f)", worstName, worst, 3*b)
}

// translateT rewrites a condition's T-predicate through the f1
// renaming: the recorded execution's actions use A1-style names at
// user ports.
func translateT(tr *graph.Tree, c *proof.LeadsTo) *proof.LeadsTo {
	f1 := graphlevel.F1(tr)
	return &proof.LeadsTo{
		Name: c.Name,
		S:    c.S,
		T:    func(a ioa.Action) bool { return c.T(f1.Invert(a)) },
	}
}
