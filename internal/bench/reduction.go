package bench

// Reduction sweep (E20): state-count and wall-time ratios of symmetry
// quotienting and ample-set partial-order reduction against the
// unreduced exploration, on the closed arbiter systems. Every row
// re-checks the mutual-exclusion invariant, and the sweep fails if any
// reduced mode disagrees with the unreduced verdict — the bench doubles
// as a coarse differential check (the fine-grained one is the battery
// in internal/reduce).
//
// Topologies measured:
//
//   - arbiter1: the specification arbiter, quotiented by the full
//     symmetric group Sₙ on its users (reduce.ArbiterUsers).
//   - arbiter3: the distributed algorithm on graph.BinaryTree. Its
//     round-robin sendgrant scan pins every node's neighbor circle, so
//     the tree has no nontrivial sound symmetry — only the POR modes
//     run, and the honest reduction is modest (the holder's visible
//     grant is enabled in most states, forcing full expansion there).
//   - arbiter3-star: the same algorithm on graph.Star, whose single
//     neighbor circle makes the rotation group Zₙ a free automorphism
//     group — reduce.StarRotation quotients the state space by exactly
//     n (the headline ≥10x row at n ≥ 10).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/arbiter/users"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/reduce"
	"repro/internal/store"
	"repro/internal/testseed"
)

// ReductionRow is one measurement of the reduction sweep.
type ReductionRow struct {
	// System is arbiter1, arbiter3, or arbiter3-star.
	System string `json:"system"`
	// Users is the number of user automata.
	Users int `json:"users"`
	// Mode is full, symmetry, por, or both.
	Mode string `json:"mode"`
	// States is the number of states explored under this mode.
	States int `json:"states"`
	// NS is the best-of-reps wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// StateRatio is full-mode states divided by this row's states.
	StateRatio float64 `json:"state_ratio"`
	// Speedup is full-mode NS divided by this row's NS.
	Speedup float64 `json:"speedup"`
	// MutexOK is the mutual-exclusion verdict (at most one user
	// holding in every explored state); identical across modes by
	// construction, enforced by the sweep.
	MutexOK bool `json:"mutex_ok"`
}

// ReductionConfig parameterizes the sweep.
type ReductionConfig struct {
	// SpecUsers are the arbiter1 sizes (default 6).
	SpecUsers []int
	// TreeUsers are the binary-tree arbiter3 sizes (default 5, 6).
	TreeUsers []int
	// StarUsers are the star arbiter3 sizes (default 8, 12).
	StarUsers []int
	// Limit bounds each exploration (0 means explore.DefaultLimit).
	Limit int
	// Workers is the explorer pool size (0 or 1 means sequential).
	Workers int
	// Reps is how many timed repetitions to take the best of
	// (default 1; the state counts are deterministic either way).
	Reps int
	// Now supplies the wall clock (nil means testseed.Now).
	Now func() time.Time
}

// reductionCase is one (system, n) instance with its reducers.
type reductionCase struct {
	system string
	users  int
	build  func() (ioa.Automaton, error)
	canon  store.Canonicalizer // nil: no sound symmetry, skip those modes
	por    func(ioa.Automaton) (*reduce.POR, error)
}

func reductionCases(cfg ReductionConfig) ([]reductionCase, error) {
	spec := cfg.SpecUsers
	if spec == nil {
		spec = []int{6}
	}
	tree := cfg.TreeUsers
	if tree == nil {
		tree = []int{5, 6}
	}
	star := cfg.StarUsers
	if star == nil {
		star = []int{8, 12}
	}
	var cases []reductionCase
	for _, n := range spec {
		n := n
		canon, err := reduce.NewArbiterUsers(n)
		if err != nil {
			return nil, err
		}
		cases = append(cases, reductionCase{
			system: "arbiter1",
			users:  n,
			build:  func() (ioa.Automaton, error) { return ExploreSystem(1, n) },
			canon:  canon,
			por: func(a ioa.Automaton) (*reduce.POR, error) {
				return reduce.NewPOR(a, reduce.Options{Visible: reduce.HolderVisibility})
			},
		})
	}
	for _, n := range tree {
		n := n
		tr, err := graph.BinaryTree(n)
		if err != nil {
			return nil, err
		}
		cases = append(cases, reductionCase{
			system: "arbiter3",
			users:  n,
			build:  func() (ioa.Automaton, error) { return ExploreSystem(3, n) },
			por: func(a ioa.Automaton) (*reduce.POR, error) {
				return reduce.NewPOR(a, reduce.Options{
					Rules:   reduce.ArbiterRules(tr),
					Visible: reduce.HolderVisibility,
				})
			},
		})
	}
	for _, n := range star {
		n := n
		tr, err := graph.Star(n)
		if err != nil {
			return nil, err
		}
		canon, err := reduce.NewStarRotation(n)
		if err != nil {
			return nil, err
		}
		cases = append(cases, reductionCase{
			system: "arbiter3-star",
			users:  n,
			build:  func() (ioa.Automaton, error) { return StarSystem(n) },
			canon:  canon,
			por: func(a ioa.Automaton) (*reduce.POR, error) {
				return reduce.NewPOR(a, reduce.Options{
					Rules:   reduce.ArbiterRules(tr),
					Visible: reduce.HolderVisibility,
				})
			},
		})
	}
	return cases, nil
}

// MutexInvariant reports whether at most one user automaton holds the
// resource in a closed arbiter state (components 1..n are the users).
// It is invariant under every canonicalizer in internal/reduce, so
// reduced and unreduced explorations must agree on its verdict.
func MutexInvariant(s ioa.State) bool {
	ts, ok := s.(*ioa.TupleState)
	if !ok {
		return true
	}
	holding := 0
	for i := 1; i < ts.Len(); i++ {
		if u, ok := ts.At(i).(*users.State); ok && u.Phase() == users.Holding {
			holding++
		}
	}
	return holding <= 1
}

// ReductionSweep measures every case under each applicable mode and
// cross-checks the invariant verdicts.
func ReductionSweep(cfg ReductionConfig) ([]ReductionRow, error) {
	cases, err := reductionCases(cfg)
	if err != nil {
		return nil, err
	}
	var rows []ReductionRow
	for _, c := range cases {
		modes := []string{"full", "por"}
		if c.canon != nil {
			modes = []string{"full", "symmetry", "por", "both"}
		}
		var full ReductionRow
		for _, mode := range modes {
			row, err := reductionMeasure(c, cfg, mode)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d %s: %w", c.system, c.users, mode, err)
			}
			if mode == "full" {
				full = row
			}
			if row.MutexOK != full.MutexOK {
				return nil, fmt.Errorf("%s n=%d: %s verdict %v disagrees with full %v",
					c.system, c.users, mode, row.MutexOK, full.MutexOK)
			}
			row.StateRatio = float64(full.States) / float64(row.States)
			if row.NS > 0 {
				row.Speedup = float64(full.NS) / float64(row.NS)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func reductionMeasure(c reductionCase, cfg ReductionConfig, mode string) (ReductionRow, error) {
	row := ReductionRow{System: c.system, Users: c.users, Mode: mode}
	limit := cfg.Limit
	if limit <= 0 {
		limit = explore.DefaultLimit
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	for r := 0; r < reps; r++ {
		a, err := c.build()
		if err != nil {
			return row, err
		}
		opts := explore.Options{Workers: cfg.Workers, Limit: limit}
		if mode == "symmetry" || mode == "both" {
			opts.Canon = c.canon
		}
		if mode == "por" || mode == "both" {
			p, err := c.por(a)
			if err != nil {
				return row, err
			}
			opts.Ample = p
		}
		eng := explore.New(opts)
		start := now()
		states, err := eng.Reach(context.Background(), a)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			return row, err
		}
		mutexOK := true
		for _, s := range states {
			if !MutexInvariant(s) {
				mutexOK = false
				break
			}
		}
		row.States = len(states)
		row.MutexOK = mutexOK
		if row.NS == 0 || elapsed < row.NS {
			row.NS = elapsed
		}
	}
	return row, nil
}

// PrintReduction writes the sweep as an aligned table.
func PrintReduction(w io.Writer, rows []ReductionRow) {
	fmt.Fprintln(w, "Reduction sweep — symmetry quotient and ample-set POR vs unreduced (E20)")
	fmt.Fprintf(w, "%-14s %6s %-9s %9s %8s %9s %8s %s\n",
		"system", "users", "mode", "states", "ratio", "ms", "speedup", "mutex")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6d %-9s %9d %7.2fx %9.1f %7.2fx %v\n",
			r.System, r.Users, r.Mode, r.States, r.StateRatio,
			float64(r.NS)/1e6, r.Speedup, r.MutexOK)
	}
}

// WriteReductionJSON writes the rows as indented JSON
// (BENCH_reduction.json).
func WriteReductionJSON(w io.Writer, rows []ReductionRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
