package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// obsFakeClock advances a fixed step per reading so sweep timings are
// deterministic in tests. The clock ends up inside the tracer, which
// parallel explore workers read concurrently, so the counter is
// atomic.
func obsFakeClock() func() time.Time {
	t0 := time.Unix(2000, 0)
	var n atomic.Int64
	return func() time.Time {
		return t0.Add(time.Duration(n.Add(1)-1) * time.Millisecond)
	}
}

func TestObsSweep(t *testing.T) {
	rows, err := ObsSweep(ObsConfig{
		Users: 2, Levels: []int{1}, Workers: 2, Reps: 1, Now: obsFakeClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Mode != "obs-off" || on.Mode != "obs-on" {
		t.Fatalf("row modes = %q, %q", off.Mode, on.Mode)
	}
	if off.States == 0 || off.States != on.States {
		t.Fatalf("states: off=%d on=%d, want equal and nonzero", off.States, on.States)
	}
	if on.TraceEvents == 0 {
		t.Error("obs-on row recorded no trace events")
	}
	if off.TraceEvents != 0 {
		t.Error("obs-off row recorded trace events")
	}

	var buf bytes.Buffer
	if err := WriteObsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []ObsRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_obs rows do not round-trip: %v", err)
	}
	if len(back) != 2 || back[1].States != on.States {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	buf.Reset()
	PrintObs(&buf, rows)
	if !strings.Contains(buf.String(), "obs-on") {
		t.Fatalf("table missing obs-on row:\n%s", buf.String())
	}
}
