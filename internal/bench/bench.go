// Package bench is the experiment harness for the §3.4 complexity
// analysis: it runs b-bounded timed executions of the arbiter at the
// A₂ level of abstraction (exactly the level at which the paper
// analyzes response time), measures responses, and regenerates the
// paper's quantitative claims:
//
//   - Theorem 50: light-load response ≤ 2bd (d = diameter);
//   - Theorem 52: heavy-load response ≤ 3be − b (e = edges);
//   - the closing remark: combined grant+request messages ⇒ ≈ 2be;
//   - the comparison against the [LF81] round-robin and tournament
//     arbiters (Θ(n)/Θ(n) and Θ(log n)/Θ(n log n) respectively).
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/users"
	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/sim"
)

// Load selects the request pattern.
type Load int

// Loads.
const (
	// Light: a single user requests, repeatedly.
	Light Load = iota + 1
	// Heavy: every user requests continuously.
	Heavy
)

// Result summarizes one timed arbiter run.
type Result struct {
	// Stats aggregates response times (request(u) to grant(u)), in
	// the same time units as b.
	Stats baseline.Stats
	// First is the response time of the very first grant.
	First float64
	// Steps is the number of automaton steps executed.
	Steps int
	// Duration is the simulated end time.
	Duration float64
	// EdgeMsgs counts arbiter-internal arrow movements (messages
	// crossing internal edges). The §3.4 closing remark's 3-vs-2
	// messages-per-edge argument shows up here: the combined variant
	// sends about a third fewer messages under heavy load.
	EdgeMsgs int
	// Tx is the recorded timed execution (when Config.Record is set).
	Tx *sim.TimedExecution
}

// Config parameterizes a timed arbiter run.
type Config struct {
	Tree *graph.Tree
	// Holder is the arbiter node initially holding the resource.
	Holder int
	Load   Load
	// Active is the requesting user index (user nodes in ID order)
	// under Light load.
	Active int
	// B is the per-class time bound.
	B float64
	// Grants is how many grants to run before stopping.
	Grants int
	// Combine enables the combined grant+request optimization.
	Combine bool
	Seed    int64
	// MaxSteps caps the run (a safety net; 0 picks a default).
	MaxSteps int
	// Record keeps the full timed execution on the Result for
	// post-hoc condition checking (costs memory on long runs).
	Record bool
}

// Run executes a b-bounded timed execution of f₁(A₂) composed with
// user automata under the configured load, using the lazy (worst-case)
// scheduler, and returns response-time measurements.
func Run(cfg Config) (*Result, error) {
	t := cfg.Tree
	userIDs := t.NodesOf(graph.User)
	names := make([]string, len(userIDs))
	for i, u := range userIDs {
		names[i] = t.Node(u).Name
	}
	rootFrom := t.Neighbors(cfg.Holder)[0]
	a2, err := graphlevel.NewWithOptions(t, rootFrom, cfg.Holder, graphlevel.Options{
		CombineGrantRequest: cfg.Combine,
	})
	if err != nil {
		return nil, err
	}
	// One fairness class per action: the b-bounded discipline then
	// matches the per-condition bounds BndedFwdReq₂/BndedFwdGr₂ of
	// §3.4 exactly.
	perAction := func(a ioa.Action) string { return string(a) }
	arb, err := ioa.Rename(a2.Relabel(perAction), graphlevel.F1(t))
	if err != nil {
		return nil, err
	}
	var env []*ioa.Prog
	switch cfg.Load {
	case Light:
		env = users.LightLoad(names, cfg.Active)
	case Heavy:
		env = users.HeavyLoad(names)
	default:
		return nil, fmt.Errorf("bench: unknown load %d", cfg.Load)
	}
	comps := []ioa.Automaton{arb}
	for _, u := range env {
		comps = append(comps, u.Relabel(perAction))
	}
	closed, err := ioa.Compose("timed-arbiter", comps...)
	if err != nil {
		return nil, err
	}

	res := &Result{First: math.NaN()}
	pending := make(map[string]float64, len(names))
	observe := func(x *ioa.Execution, now float64) {
		act := x.Acts[len(x.Acts)-1]
		if len(act.Params()) != 1 {
			if len(act.Params()) == 2 {
				res.EdgeMsgs++
			}
			return
		}
		u := act.Params()[0]
		switch act.Base() {
		case "request":
			if _, dup := pending[u]; !dup {
				pending[u] = now
			}
		case "grant":
			if t0, ok := pending[u]; ok {
				resp := now - t0
				res.Stats.Grants++
				res.Stats.Sum += resp
				if resp > res.Stats.Max {
					res.Stats.Max = resp
				}
				if math.IsNaN(res.First) {
					res.First = resp
				}
				delete(pending, u)
			}
		}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200 * cfg.Grants * (t.EdgeCount() + 2)
	}
	runner := &sim.TimedRunner{
		Auto:    closed,
		Bounds:  sim.UniformBounds(cfg.B),
		Tempo:   sim.Lazy,
		Seed:    cfg.Seed,
		Observe: observe,
	}
	tx, err := runner.Run(maxSteps, func(*sim.TimedExecution) bool {
		return res.Stats.Grants >= cfg.Grants
	})
	if err != nil {
		return nil, err
	}
	if res.Stats.Grants < cfg.Grants {
		return nil, fmt.Errorf("bench: only %d/%d grants after %d steps", res.Stats.Grants, cfg.Grants, tx.Exec.Len())
	}
	res.Steps = tx.Exec.Len()
	res.Duration = tx.Now()
	if cfg.Record {
		res.Tx = tx
	}
	return res, nil
}

// FarthestHolderFrom returns the arbiter node maximizing tree distance
// from user u — the adversarial initial placement for light-load
// response measurements.
func FarthestHolderFrom(t *graph.Tree, u int) int {
	best, bestD := -1, -1
	for _, a := range t.NodesOf(graph.Arbiter) {
		if d := t.PathLen(u, a); d > bestD {
			best, bestD = a, d
		}
	}
	return best
}

// A Row is one line of an experiment table.
type Row struct {
	Label   string
	N       int     // number of users
	D       int     // graph diameter
	E       int     // graph edges
	Max     float64 // max observed response (units of b)
	Mean    float64
	First   float64
	Bound   float64 // the paper's bound for this configuration
	WithinB bool    // observed ≤ bound
	// MsgsPerGrant is the mean number of internal-edge messages per
	// grant (populated by heavy-load sweeps).
	MsgsPerGrant float64
}

// Theorem50 sweeps light-load first-response times over trees built by
// build (e.g. graph.BinaryTree or a line builder), checking the
// 2bd bound of Theorem 50.
func Theorem50(sizes []int, b float64, build func(int) (*graph.Tree, error), seed int64) ([]Row, error) {
	var rows []Row
	for _, n := range sizes {
		t, err := build(n)
		if err != nil {
			return nil, err
		}
		active := 0
		uid := t.NodesOf(graph.User)[active]
		res, err := Run(Config{
			Tree:   t,
			Holder: FarthestHolderFrom(t, uid),
			Load:   Light,
			Active: active,
			B:      b,
			Grants: 3,
			Seed:   seed,
		})
		if err != nil {
			return nil, err
		}
		bound := 2 * b * float64(t.Diameter())
		rows = append(rows, Row{
			Label: fmt.Sprintf("n=%d", n), N: n, D: t.Diameter(), E: t.EdgeCount(),
			Max: res.Stats.Max, Mean: res.Stats.Mean(), First: res.First,
			Bound: bound, WithinB: res.Stats.Max <= bound+1e-9,
		})
	}
	return rows, nil
}

// Theorem52 sweeps heavy-load maximum response times, checking the
// 3be − b bound of Theorem 52. When combine is true the combined
// grant+request variant is used and the bound tightens to 2be.
func Theorem52(sizes []int, b float64, combine bool, seed int64) ([]Row, error) {
	var rows []Row
	for _, n := range sizes {
		t, err := graph.BinaryTree(n)
		if err != nil {
			return nil, err
		}
		res, err := Run(Config{
			Tree:    t,
			Holder:  t.NodesOf(graph.Arbiter)[0],
			Load:    Heavy,
			B:       b,
			Grants:  6 * n,
			Combine: combine,
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		e := float64(t.EdgeCount())
		bound := 3*b*e - b
		if combine {
			bound = 2 * b * e
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("n=%d", n), N: n, D: t.Diameter(), E: t.EdgeCount(),
			Max: res.Stats.Max, Mean: res.Stats.Mean(), First: res.First,
			Bound: bound, WithinB: res.Stats.Max <= bound+1e-9,
			MsgsPerGrant: float64(res.EdgeMsgs) / float64(res.Stats.Grants),
		})
	}
	return rows, nil
}

// CompareRow is one line of the §3.4 arbiter comparison, extended with
// the token-ring arbiter of internal/ring.
type CompareRow struct {
	N          int
	SchonLight float64 // Schönhage max response, light load
	SchonHeavy float64 // Schönhage max response, heavy load
	RRLight    float64 // round-robin
	RRHeavy    float64
	TournLight float64 // tournament tree
	TournHeavy float64
	RingLight  float64 // token ring
	RingHeavy  float64
}

// Comparison regenerates the arbiter comparison of §3.4 ¶1 over binary
// trees with n users.
func Comparison(sizes []int, b float64, seed int64) ([]CompareRow, error) {
	var rows []CompareRow
	for _, n := range sizes {
		t, err := graph.BinaryTree(n)
		if err != nil {
			return nil, err
		}
		uid := t.NodesOf(graph.User)[0]
		light, err := Run(Config{
			Tree: t, Holder: FarthestHolderFrom(t, uid), Load: Light, Active: 0,
			B: b, Grants: 3, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		heavy, err := Run(Config{
			Tree: t, Holder: t.NodesOf(graph.Arbiter)[0], Load: Heavy,
			B: b, Grants: 6 * n, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		rrL, err := baseline.RoundRobin(n, 3, baseline.LightLoad(n, n-1))
		if err != nil {
			return nil, err
		}
		rrH, err := baseline.RoundRobin(n, 6*n, baseline.HeavyLoad(n))
		if err != nil {
			return nil, err
		}
		toL, err := baseline.Tournament(n, 3, baseline.LightLoad(n, n-1))
		if err != nil {
			return nil, err
		}
		toH, err := baseline.Tournament(n, 6*n, baseline.HeavyLoad(n))
		if err != nil {
			return nil, err
		}
		ringL, err := RunRing(n, Light, b, 3, seed)
		if err != nil {
			return nil, err
		}
		ringH, err := RunRing(n, Heavy, b, 6*n, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompareRow{
			N:          n,
			SchonLight: light.Stats.Max, SchonHeavy: heavy.Stats.Max,
			RRLight: rrL.Max, RRHeavy: rrH.Max,
			TournLight: toL.Max, TournHeavy: toH.Max,
			RingLight: ringL.Stats.Max, RingHeavy: ringH.Stats.Max,
		})
	}
	return rows, nil
}

// PrintRows renders an experiment table.
func PrintRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-8s %4s %4s %4s %10s %10s %10s %10s %9s %s\n",
		"config", "n", "d", "e", "first", "mean", "max", "bound", "msgs/gr", "ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %4d %4d %10.1f %10.1f %10.1f %10.1f %9.1f %t\n",
			r.Label, r.N, r.D, r.E, r.First, r.Mean, r.Max, r.Bound, r.MsgsPerGrant, r.WithinB)
	}
	fmt.Fprintln(w)
}

// PrintComparison renders the arbiter comparison table.
func PrintComparison(w io.Writer, rows []CompareRow) {
	title := "Arbiter comparison (max response, units of b; light / heavy load)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%4s | %12s | %12s | %12s | %12s\n",
		"n", "Schönhage", "round-robin", "tournament", "token ring")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d | %5.0f /%5.0f | %5.0f /%5.0f | %5.0f /%5.0f | %5.0f /%5.0f\n",
			r.N, r.SchonLight, r.SchonHeavy, r.RRLight, r.RRHeavy,
			r.TournLight, r.TournHeavy, r.RingLight, r.RingHeavy)
	}
	fmt.Fprintln(w)
}
