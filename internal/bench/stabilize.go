package bench

// Self-stabilization certification sweep (E19): Dijkstra's K-state
// token ring certified over ring size × corruption envelope, plus the
// LeLann token ring under crash corruption as the negative control.
// Each row records the certifier's verdicts (closure, convergence,
// boundedness), the measured worst-case rounds-to-legitimacy bound,
// and best-of-reps wall-clock time. Rows are written to
// BENCH_stabilize.json by arbiterbench -stabilize-bench.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/arbiter/spec"
	"repro/internal/domain"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/ring"
	"repro/internal/stabilize"
	"repro/internal/testseed"
)

// StabilizeRow is one certification cell of the sweep.
type StabilizeRow struct {
	// System names the certified automaton: dijkstra or lelann.
	System string `json:"system"`
	// N is the ring size; K the counter modulus (Dijkstra rows only).
	N int `json:"n"`
	K int `json:"k_modulus,omitempty"`
	// Envelope names the corruption envelope; EnvelopeStates counts
	// its distinct states and States the size of its closure.
	Envelope       string `json:"envelope"`
	EnvelopeStates int    `json:"envelope_states"`
	States         int    `json:"states"`
	// Stabilizing, Closed, Converges, Bounded are the certificate
	// verdicts.
	Stabilizing bool `json:"stabilizing"`
	Closed      bool `json:"closed"`
	Converges   bool `json:"converges"`
	Bounded     bool `json:"bounded"`
	// Bound is the measured worst-case rounds-to-legitimacy over the
	// envelope (-1 when convergence is unbounded or fails);
	// MeanRounds the envelope average.
	Bound      int     `json:"bound"`
	MeanRounds float64 `json:"mean_rounds"`
	// NS is the best-of-reps certification wall time in nanoseconds.
	NS int64 `json:"ns"`
}

// StabilizeConfig parameterizes the sweep.
type StabilizeConfig struct {
	// Sizes are the Dijkstra ring sizes to certify (default 3..5; the
	// full envelope has K^n states, so keep n modest).
	Sizes []int
	// Workers is the certification engine's worker count.
	Workers int
	// Limit bounds each envelope closure (0 = explore.DefaultLimit).
	Limit int
	// Reps is how many timed repetitions to take the best of (default
	// 3).
	Reps int
	// Now supplies the wall clock (nil means testseed.Now).
	Now func() time.Time
}

// stabilizeCell certifies one (automaton, envelope) cell, best-of-reps
// timed.
func stabilizeCell(cfg StabilizeConfig, row StabilizeRow, build func() (ioa.Automaton, func(ioa.State) bool, stabilize.Envelope, error)) (StabilizeRow, error) {
	now := cfg.Now
	if now == nil {
		now = testseed.Now
	}
	opts := stabilize.Options{Workers: cfg.Workers, Limit: cfg.Limit}
	for r := 0; r < cfg.Reps; r++ {
		a, legit, env, err := build()
		if err != nil {
			return row, err
		}
		start := now()
		cert, err := stabilize.Certify(context.Background(), a, legit, env, opts)
		elapsed := now().Sub(start).Nanoseconds()
		if err != nil {
			return row, err
		}
		if row.NS == 0 || elapsed < row.NS {
			row.NS = elapsed
		}
		row.EnvelopeStates = cert.EnvelopeStates
		row.States = cert.States
		row.Stabilizing = cert.Stabilizing()
		row.Closed = cert.Closed
		row.Converges = cert.Converges
		row.Bounded = cert.Bounded
		row.Bound = cert.K
		row.MeanRounds = cert.MeanRounds
	}
	return row, nil
}

// spotEnvelope streams every single-coordinate corruption of every
// state the ring reaches from its legitimate start — the transient
// bit-flip envelope, much smaller than the full K^n one. Certify
// deduplicates, so the uncorrupted states it also yields are harmless.
type spotEnvelope struct {
	r   *ring.DijkstraRing
	eng *explore.Engine
}

func (e spotEnvelope) Name() string { return "single-corruption" }

func (e spotEnvelope) Visit(ctx context.Context, visit func(ioa.State) error) error {
	reached, err := e.eng.Reach(ctx, e.r.Auto)
	if err != nil {
		return err
	}
	for _, st := range reached {
		s := st.(*ring.DijkstraState)
		for i := 0; i < e.r.N; i++ {
			for v := 0; v < e.r.K; v++ {
				if err := visit(s.With(i, v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// StabilizeSweep certifies Dijkstra rings over the configured sizes —
// full envelope at K=n, single-corruption spot envelope at K=n, and
// the K=n-2 full-envelope negative boundary (n >= 4) — plus the
// LeLann crash-corruption negative control at n=3.
func StabilizeSweep(cfg StabilizeConfig) ([]StabilizeRow, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int{3, 4, 5}
	}
	opts := stabilize.Options{Workers: cfg.Workers, Limit: cfg.Limit}
	eng := explore.New(explore.Options{Workers: cfg.Workers, Limit: cfg.Limit})
	var rows []StabilizeRow
	for _, n := range sizes {
		cells := []struct {
			k        int
			envelope func(r *ring.DijkstraRing) stabilize.Envelope
			name     string
		}{
			{n, func(r *ring.DijkstraRing) stabilize.Envelope {
				return r.StateDomain()
			}, "all-corruptions"},
			{n, func(r *ring.DijkstraRing) stabilize.Envelope {
				return spotEnvelope{r: r, eng: eng}
			}, "single-corruption"},
		}
		if n >= 4 {
			cells = append(cells, struct {
				k        int
				envelope func(r *ring.DijkstraRing) stabilize.Envelope
				name     string
			}{n - 2, func(r *ring.DijkstraRing) stabilize.Envelope {
				return r.StateDomain()
			}, "all-corruptions"})
		}
		for _, cell := range cells {
			cell := cell
			row, err := stabilizeCell(cfg,
				StabilizeRow{System: "dijkstra", N: n, K: cell.k, Envelope: cell.name},
				func() (ioa.Automaton, func(ioa.State) bool, stabilize.Envelope, error) {
					r, err := ring.NewDijkstra(n, cell.k)
					if err != nil {
						return nil, nil, nil, err
					}
					return r.Auto, r.Legit, cell.envelope(r), nil
				})
			if err != nil {
				return nil, fmt.Errorf("bench: stabilize dijkstra n=%d K=%d %s: %w", n, cell.k, cell.name, err)
			}
			rows = append(rows, row)
		}
	}

	row, err := stabilizeCell(cfg,
		StabilizeRow{System: "lelann", N: 3, Envelope: "crash(reset)"},
		func() (ioa.Automaton, func(ioa.State) bool, stabilize.Envelope, error) {
			return lelannCrashCell(opts)
		})
	if err != nil {
		return nil, fmt.Errorf("bench: stabilize lelann: %w", err)
	}
	rows = append(rows, row)
	return rows, nil
}

// lelannCrashCell builds the LeLann negative control: the 3-process
// token ring, with the corruption envelope generated by crash-restart
// (Reset) wrappers around every process, projected back into the
// clean composition's state space.
func lelannCrashCell(opts stabilize.Options) (ioa.Automaton, func(ioa.State) bool, stabilize.Envelope, error) {
	sys, err := ring.New(spec.DefaultUsers(3))
	if err != nil {
		return nil, nil, nil, err
	}
	comps := make([]ioa.Automaton, len(sys.Procs))
	for i, p := range sys.Procs {
		comps[i], err = faults.CrashRestart(p, "p"+strconv.Itoa(i), faults.Reset)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	crashed, err := ioa.Compose("ring-crash", comps...)
	if err != nil {
		return nil, nil, nil, err
	}
	env := domain.Reachable("crash(reset)", crashed, domain.TupleMap(domain.CrashInner),
		explore.Options{Workers: opts.Workers, Limit: opts.Limit})
	legit := func(s ioa.State) bool { return sys.TokenCount(s) == 1 }
	return sys.Composite, legit, env, nil
}

// WriteStabilizeJSON emits the sweep as indented JSON
// (BENCH_stabilize.json).
func WriteStabilizeJSON(w io.Writer, rows []StabilizeRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// PrintStabilize renders the sweep as a table.
func PrintStabilize(w io.Writer, rows []StabilizeRow) {
	title := "Self-stabilization certification — ring size × corruption envelope (best-of-reps)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-9s %3s %3s %-18s %9s %8s %-7s %-7s %5s %7s %12s\n",
		"system", "n", "K", "envelope", "env", "closure", "closed", "conv", "k", "mean", "ns")
	for _, r := range rows {
		k := "-"
		if r.K > 0 {
			k = strconv.Itoa(r.K)
		}
		bound := "-"
		if r.Bounded {
			bound = strconv.Itoa(r.Bound)
		}
		conv := "FAIL"
		switch {
		case r.Converges && r.Bounded:
			conv = "ok"
		case r.Converges:
			conv = "fair"
		}
		closed := "FAIL"
		if r.Closed {
			closed = "ok"
		}
		fmt.Fprintf(w, "%-9s %3d %3s %-18s %9d %8d %-7s %-7s %5s %7.2f %12d\n",
			r.System, r.N, k, r.Envelope, r.EnvelopeStates, r.States,
			closed, conv, bound, r.MeanRounds, r.NS)
	}
	fmt.Fprintln(w)
}
