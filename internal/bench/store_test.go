package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
)

// TestStoreSweepAgrees runs a small sweep and checks the consistency
// StoreSweep itself enforces (every mode reaches the reference state
// count), the footprint fields, and JSON round-tripping.
func TestStoreSweepAgrees(t *testing.T) {
	rows, err := StoreSweep(StoreConfig{Users: 2, Reps: 1, Workers: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 systems × (reference, interned, interned-parallel@2)
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	var buf bytes.Buffer
	if err := WriteStoreJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []StoreRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %d vs %d", len(back), len(rows))
	}
	for _, r := range rows {
		if r.States == 0 {
			t.Errorf("%s %s: zero states", r.System, r.Mode)
		}
		if r.NS <= 0 {
			t.Errorf("%s %s: non-positive time", r.System, r.Mode)
		}
		if r.Mode != "reference" && (r.ArenaBytes <= 0 || r.BytesPerState <= 0) {
			t.Errorf("%s %s: missing footprint (arena=%d, B/state=%d)",
				r.System, r.Mode, r.ArenaBytes, r.BytesPerState)
		}
	}
}

// BenchmarkStoreReferenceVsInterned times the seed string-keyed
// explorer against the interned store-backed engine on the closed
// arbiters — the CI sanity benchmark for the store path (run at
// -benchtime=1x under -race alongside BenchmarkReachSerialVsParallel).
func BenchmarkStoreReferenceVsInterned(b *testing.B) {
	const nUsers = 3
	modes := []struct {
		name    string
		workers int // 0 = reference explorer
	}{
		{"reference", 0},
		{"interned", 1},
		{"interned-parallel-4", 4},
	}
	for level := 1; level <= 3; level++ {
		for _, m := range modes {
			b.Run(benchName(level, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					a, err := ExploreSystem(level, nUsers)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					var states []ioa.State
					if m.workers > 0 {
						eng := explore.New(explore.Options{Workers: m.workers})
						states, err = eng.Reach(context.Background(), a)
					} else {
						states, err = explore.ReferenceReach(a, explore.DefaultLimit)
					}
					if err != nil {
						b.Fatal(err)
					}
					if len(states) == 0 {
						b.Fatal("no states")
					}
					if i == 0 {
						b.ReportMetric(float64(len(states)), "states")
					}
				}
			})
		}
	}
}
