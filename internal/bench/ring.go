package bench

import (
	"fmt"
	"math"

	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/ioa"
	"repro/internal/ring"
	"repro/internal/sim"
)

// RunRing measures the token-ring arbiter (internal/ring) under the
// same b-bounded lazy-adversary discipline as the Schönhage runs: one
// fairness class per action, every class firing within b of becoming
// continuously enabled. The token ring is the classic Θ(n)-both-loads
// point of comparison: the token must travel the ring regardless of
// demand.
func RunRing(n int, load Load, b float64, grants int, seed int64) (*Result, error) {
	us := spec.DefaultUsers(n)
	perAction := func(a ioa.Action) string { return string(a) }
	comps := make([]ioa.Automaton, 0, 2*n)
	for i, u := range us {
		comps = append(comps, ring.NewProcess(i, n, u).Relabel(perAction))
	}
	var env []*ioa.Prog
	switch load {
	case Light:
		// The requester sits half a ring away from the initial token
		// (process 0) — the average-adversarial placement; a full lap
		// bounds it either way.
		env = users.LightLoad(us, n/2)
	case Heavy:
		env = users.HeavyLoad(us)
	default:
		return nil, fmt.Errorf("bench: unknown load %d", load)
	}
	for _, u := range env {
		comps = append(comps, u.Relabel(perAction))
	}
	closed, err := ioa.Compose("timed-ring", comps...)
	if err != nil {
		return nil, err
	}
	res := &Result{First: math.NaN()}
	pending := make(map[string]float64, n)
	observe := func(x *ioa.Execution, now float64) {
		act := x.Acts[len(x.Acts)-1]
		if len(act.Params()) != 1 {
			if len(act.Params()) == 2 {
				res.EdgeMsgs++
			}
			return
		}
		u := act.Params()[0]
		switch act.Base() {
		case "request":
			if _, dup := pending[u]; !dup {
				pending[u] = now
			}
		case "grant":
			if t0, ok := pending[u]; ok {
				resp := now - t0
				res.Stats.Grants++
				res.Stats.Sum += resp
				if resp > res.Stats.Max {
					res.Stats.Max = resp
				}
				if math.IsNaN(res.First) {
					res.First = resp
				}
				delete(pending, u)
			}
		}
	}
	runner := &sim.TimedRunner{
		Auto:    closed,
		Bounds:  sim.UniformBounds(b),
		Tempo:   sim.Lazy,
		Seed:    seed,
		Observe: observe,
	}
	tx, err := runner.Run(300*grants*(n+2), func(*sim.TimedExecution) bool {
		return res.Stats.Grants >= grants
	})
	if err != nil {
		return nil, err
	}
	if res.Stats.Grants < grants {
		return nil, fmt.Errorf("bench: ring produced %d/%d grants", res.Stats.Grants, grants)
	}
	res.Steps = tx.Exec.Len()
	res.Duration = tx.Now()
	return res, nil
}
