package testseed

import "testing"

func TestBaseDefaultsToZero(t *testing.T) {
	t.Setenv("REPRO_SEED", "")
	if got := Base(t); got != 0 {
		t.Fatalf("default seed = %d, want 0", got)
	}
}

func TestBaseReadsEnv(t *testing.T) {
	t.Setenv("REPRO_SEED", "42")
	if got := Base(t); got != 42 {
		t.Fatalf("seed = %d, want 42", got)
	}
}

func TestRandIsDeterministic(t *testing.T) {
	t.Setenv("REPRO_SEED", "7")
	a, b := Rand(t, 3), Rand(t, 3)
	for i := 0; i < 16; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("streams diverge at %d: %d vs %d", i, x, y)
		}
	}
	if Rand(t, 3).Int63() == Rand(t, 4).Int63() && Rand(t, 3).Int63() == Rand(t, 4).Int63() {
		t.Fatal("offset streams should differ")
	}
}

func TestQuickSeeded(t *testing.T) {
	t.Setenv("REPRO_SEED", "5")
	cfg := Quick(t, 30)
	if cfg.MaxCount != 30 || cfg.Rand == nil {
		t.Fatalf("unexpected config: %+v", cfg)
	}
	if Quick(t, 0).Rand.Int63() != Quick(t, 0).Rand.Int63() {
		t.Fatal("quick configs with the same seed must agree")
	}
}
