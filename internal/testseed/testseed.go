// Package testseed gives every randomized test in the repository a
// single, logged seed source, and is the one sanctioned gateway for
// environmental nondeterminism (the ioalint nondet analyzer exempts
// only this package). The base seed comes from the REPRO_SEED
// environment variable (default 0), so the whole suite is
// deterministic by default and any failure can be replayed exactly
// with REPRO_SEED=<n> go test. Tests derive their generators from the
// base seed plus a local offset, never from time or global state.
package testseed

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

// Now returns the current wall-clock reading. It is the repository's
// single sanctioned wall-clock accessor: production code that must
// measure real elapsed time (the bench sweeps) takes an injectable
// clock defaulting to this function, so the nondet analyzer can
// guarantee statically that no other wall-clock read exists. The
// returned Time carries a monotonic reading, so Sub is safe for
// interval measurement.
func Now() time.Time { return time.Now() }

// Source returns a deterministic generator for the given seed. It is
// the sanctioned production-code gateway to math/rand: packages that
// need seeded randomness (the sim policies, the timed runner)
// construct their generators here — or accept an injected *rand.Rand —
// instead of calling rand.New themselves, so the nondet analyzer can
// flag any stray generator construction inside the model packages.
func Source(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Base returns the repository-wide test seed — the value of
// REPRO_SEED, default 0 — and logs it so a failing run's output
// always states how to reproduce it.
func Base(t testing.TB) int64 {
	t.Helper()
	seed := int64(0)
	if s := os.Getenv("REPRO_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("testseed: bad REPRO_SEED %q: %v", s, err)
		}
		seed = n
	}
	t.Logf("testseed: REPRO_SEED=%d (replay with REPRO_SEED=%d go test)", seed, seed)
	return seed
}

// Rand returns a deterministic generator derived from Base plus a
// local offset, letting one test run several distinct streams.
func Rand(t testing.TB, offset int64) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(Base(t) + offset))
}

// Quick returns a testing/quick configuration seeded from Base.
// maxCount of 0 keeps the quick package's default count.
func Quick(t testing.TB, maxCount int) *quick.Config {
	t.Helper()
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(Base(t))),
	}
}
