// Package graph provides the tree substrate of Chapter 3: connected
// acyclic graphs whose leaves are user nodes and whose internal nodes
// form the arbiter, with fixed cyclic orderings of each node's
// neighbors (used by the round-robin granting rule), buffer-node
// augmentation 𝒢 (§3.3), and the metrics (diameter, edge count) of the
// §3.4 complexity analysis.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a node of the graph.
type Kind int

// Node kinds. Users are the leaves of G; arbiter nodes are internal;
// buffer nodes are inserted between adjacent arbiter nodes by Augment.
const (
	User Kind = iota + 1
	Arbiter
	Buffer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case User:
		return "user"
	case Arbiter:
		return "arbiter"
	case Buffer:
		return "buffer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// A Node is a vertex of the tree.
type Node struct {
	// ID is the node's index in the tree's node list.
	ID int
	// Name is the node's label (u1..., a1..., b(a1,a2)).
	Name string
	// Kind is the node's role.
	Kind Kind
}

// A Tree is a connected acyclic graph with a fixed ordering of each
// node's neighbors. It is immutable after construction.
type Tree struct {
	nodes []Node
	// adj[v] lists v's neighbors in v's fixed cyclic order.
	adj [][]int
	// edgeIndex maps directed edge (v,w) to a dense index in [0, 2E).
	edgeIndex map[[2]int]int
	edges     [][2]int // directed edges by index
	// tin/tout are Euler intervals for orientation queries, rooted at 0.
	tin, tout []int
	parent    []int
}

// A Builder accumulates nodes and edges for a Tree.
type Builder struct {
	nodes  []Node
	byName map[string]int
	adj    [][]int
	err    error
}

// NewBuilder creates an empty tree builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]int)}
}

// AddNode adds a node and returns its ID.
func (b *Builder) AddNode(name string, kind Kind) int {
	if _, dup := b.byName[name]; dup && b.err == nil {
		b.err = fmt.Errorf("graph: duplicate node name %q", name)
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Kind: kind})
	b.byName[name] = id
	b.adj = append(b.adj, nil)
	return id
}

// AddEdge adds an undirected edge; neighbor order is insertion order.
func (b *Builder) AddEdge(v, w int) {
	if b.err != nil {
		return
	}
	if v < 0 || v >= len(b.nodes) || w < 0 || w >= len(b.nodes) || v == w {
		b.err = fmt.Errorf("graph: bad edge (%d,%d)", v, w)
		return
	}
	b.adj[v] = append(b.adj[v], w)
	b.adj[w] = append(b.adj[w], v)
}

// Build validates connectivity and acyclicity and returns the tree.
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.nodes)
	if n == 0 {
		return nil, fmt.Errorf("graph: empty tree")
	}
	edgeCount := 0
	for _, nb := range b.adj {
		edgeCount += len(nb)
	}
	if edgeCount != 2*(n-1) {
		return nil, fmt.Errorf("graph: %d nodes need %d edges for a tree, have %d", n, n-1, edgeCount/2)
	}
	t := &Tree{
		nodes:     b.nodes,
		adj:       b.adj,
		edgeIndex: make(map[[2]int]int, edgeCount),
		tin:       make([]int, n),
		tout:      make([]int, n),
		parent:    make([]int, n),
	}
	for v, nb := range b.adj {
		for _, w := range nb {
			key := [2]int{v, w}
			if _, dup := t.edgeIndex[key]; dup {
				return nil, fmt.Errorf("graph: duplicate edge (%s,%s)", b.nodes[v].Name, b.nodes[w].Name)
			}
			t.edgeIndex[key] = len(t.edges)
			t.edges = append(t.edges, key)
		}
	}
	// Euler tour from node 0; also checks connectivity/acyclicity.
	timer := 0
	visited := make([]bool, n)
	var dfs func(v, p int) error
	dfs = func(v, p int) error {
		if visited[v] {
			return fmt.Errorf("graph: cycle detected at %s", t.nodes[v].Name)
		}
		visited[v] = true
		t.parent[v] = p
		t.tin[v] = timer
		timer++
		for _, w := range t.adj[v] {
			if w == p {
				continue
			}
			if err := dfs(w, v); err != nil {
				return err
			}
		}
		t.tout[v] = timer
		timer++
		return nil
	}
	if err := dfs(0, -1); err != nil {
		return nil, err
	}
	for v, ok := range visited {
		if !ok {
			return nil, fmt.Errorf("graph: node %s unreachable (graph not connected)", t.nodes[v].Name)
		}
	}
	return t, nil
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Tree) Node(id int) Node { return t.nodes[id] }

// Nodes returns all nodes.
func (t *Tree) Nodes() []Node { return append([]Node(nil), t.nodes...) }

// NodesOf returns the IDs of nodes of the given kind, ascending.
func (t *Tree) NodesOf(kind Kind) []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Neighbors returns v's neighbors in the fixed cyclic order.
func (t *Tree) Neighbors(v int) []int { return append([]int(nil), t.adj[v]...) }

// Degree returns the number of neighbors of v.
func (t *Tree) Degree(v int) int { return len(t.adj[v]) }

// EdgeCount returns e, the number of undirected edges.
func (t *Tree) EdgeCount() int { return len(t.edges) / 2 }

// DirectedEdges returns the number of directed edges (2e).
func (t *Tree) DirectedEdges() int { return len(t.edges) }

// EdgeID returns the dense index of directed edge (v,w) and whether it
// exists.
func (t *Tree) EdgeID(v, w int) (int, bool) {
	id, ok := t.edgeIndex[[2]int{v, w}]
	return id, ok
}

// Edge returns the directed edge with the given dense index.
func (t *Tree) Edge(id int) (v, w int) {
	e := t.edges[id]
	return e[0], e[1]
}

// inSubtree reports whether z is in the subtree rooted at v (with the
// tree rooted at node 0).
func (t *Tree) inSubtree(v, z int) bool {
	return t.tin[v] <= t.tin[z] && t.tout[z] <= t.tout[v]
}

// PointsToward reports whether the directed edge (v,w) points toward
// node z: whether (v,w) lies on the path from v to z (§3.2). Requires
// that v,w be adjacent and z ≠ v.
func (t *Tree) PointsToward(v, w, z int) bool {
	if t.parent[w] == v {
		// Edge descends into w's subtree.
		return t.inSubtree(w, z)
	}
	// w is v's parent: edge points out of v's subtree.
	return !t.inSubtree(v, z)
}

// Between returns the nodes properly between w and v in the cyclic
// ordering of a's neighbors — the paper's (w, v) interval: scanning
// a's neighbor list cyclically starting after w, the nodes encountered
// strictly before v (§3.2.2).
func (t *Tree) Between(a, w, v int) []int {
	nb := t.adj[a]
	start := indexOf(nb, w)
	if start < 0 || indexOf(nb, v) < 0 {
		return nil
	}
	var out []int
	for k := 1; k < len(nb); k++ {
		cand := nb[(start+k)%len(nb)]
		if cand == v {
			break
		}
		out = append(out, cand)
	}
	return out
}

// FirstRequesterAfter scans a's neighbors cyclically starting after w
// and returns the first node for which requesting reports true, or -1.
// This is the node selected by the paper's granting rule: "the first
// node w in some fixed ordering of its adjacent nodes having a request
// arrow" after the node the grant arrived from.
func (t *Tree) FirstRequesterAfter(a, w int, requesting func(int) bool) int {
	nb := t.adj[a]
	start := indexOf(nb, w)
	if start < 0 {
		start = 0
	}
	for k := 1; k <= len(nb); k++ {
		cand := nb[(start+k)%len(nb)]
		if requesting(cand) {
			return cand
		}
	}
	return -1
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// PathLen returns the number of edges on the path from v to w.
func (t *Tree) PathLen(v, w int) int {
	// LCA by walking parents using depth via tin ordering.
	depth := func(x int) int {
		d := 0
		for x != 0 {
			x = t.parent[x]
			d++
		}
		return d
	}
	dv, dw := depth(v), depth(w)
	n := 0
	for dv > dw {
		v = t.parent[v]
		dv--
		n++
	}
	for dw > dv {
		w = t.parent[w]
		dw--
		n++
	}
	for v != w {
		v, w = t.parent[v], t.parent[w]
		n += 2
	}
	return n
}

// Diameter returns the number of edges of the longest path in the tree.
func (t *Tree) Diameter() int {
	far := func(src int) (int, int) {
		dist := make([]int, t.N())
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		best, bestD := src, 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] > bestD {
				best, bestD = v, dist[v]
			}
			for _, w := range t.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return best, bestD
	}
	a, _ := far(0)
	_, d := far(a)
	return d
}

// UserAttachment returns the arbiter node adjacent to user u (a user
// is a leaf with exactly one neighbor).
func (t *Tree) UserAttachment(u int) int { return t.adj[u][0] }

// String renders the adjacency structure for diagnostics.
func (t *Tree) String() string {
	var b strings.Builder
	for v, nb := range t.adj {
		names := make([]string, len(nb))
		for i, w := range nb {
			names[i] = t.nodes[w].Name
		}
		fmt.Fprintf(&b, "%s(%s): %s\n", t.nodes[v].Name, t.nodes[v].Kind, strings.Join(names, " "))
	}
	return b.String()
}

// Augment inserts a buffer node b(a,a') between every pair of adjacent
// arbiter nodes, yielding the graph 𝒢 of §3.3. User–arbiter edges are
// not buffered (user nodes are ports, not processes). Neighbor
// orderings of original nodes are preserved, with each arbiter
// neighbor replaced by the corresponding buffer.
func Augment(t *Tree) (*Tree, error) {
	b := NewBuilder()
	// Recreate original nodes with the same IDs.
	for _, n := range t.nodes {
		b.AddNode(n.Name, n.Kind)
	}
	buffer := make(map[[2]int]int) // unordered arbiter pair -> buffer id
	pairKey := func(v, w int) [2]int {
		if v > w {
			v, w = w, v
		}
		return [2]int{v, w}
	}
	for v := range t.adj {
		for _, w := range t.adj[v] {
			if v > w {
				continue
			}
			if t.nodes[v].Kind == Arbiter && t.nodes[w].Kind == Arbiter {
				name := fmt.Sprintf("b(%s,%s)", t.nodes[v].Name, t.nodes[w].Name)
				buffer[pairKey(v, w)] = b.AddNode(name, Buffer)
			}
		}
	}
	// Re-add edges preserving each node's neighbor order. To keep the
	// builder's insertion-order adjacency faithful, walk each node's
	// ordered neighbor list and add each undirected edge once, but via
	// per-node explicit adjacency below.
	added := make(map[[2]int]bool)
	addOnce := func(v, w int) {
		k := pairKey(v, w)
		if !added[k] {
			added[k] = true
			b.AddEdge(v, w)
		}
	}
	for v := range t.adj {
		for _, w := range t.adj[v] {
			if t.nodes[v].Kind == Arbiter && t.nodes[w].Kind == Arbiter {
				addOnce(v, buffer[pairKey(v, w)])
			} else {
				addOnce(v, w)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return fixNeighborOrder(t, g, buffer), nil
}

// fixNeighborOrder restores, in g, each original node's neighbor order
// from t (with arbiter neighbors replaced by buffers). Buffer nodes
// have degree 2; their order is irrelevant.
func fixNeighborOrder(t, g *Tree, buffer map[[2]int]int) *Tree {
	pairKey := func(v, w int) [2]int {
		if v > w {
			v, w = w, v
		}
		return [2]int{v, w}
	}
	for v := range t.adj {
		want := make([]int, 0, len(t.adj[v]))
		for _, w := range t.adj[v] {
			if t.nodes[v].Kind == Arbiter && t.nodes[w].Kind == Arbiter {
				want = append(want, buffer[pairKey(v, w)])
			} else {
				want = append(want, w)
			}
		}
		g.adj[v] = want
	}
	// Edge indices are unaffected (same edge set); re-sort not needed.
	return g
}

// BinaryTree builds a tree with nUsers user leaves attached to a
// balanced binary arbiter tree. nUsers must be at least 1. Users are
// named u0..u(n-1); arbiter nodes a0... For nUsers == 1 a single
// arbiter node with one user is returned.
func BinaryTree(nUsers int) (*Tree, error) {
	if nUsers < 1 {
		return nil, fmt.Errorf("graph: need at least one user, got %d", nUsers)
	}
	b := NewBuilder()
	// Build a balanced binary tree of arbiter nodes with nUsers leaves
	// of the arbiter tree each adopting one user.
	nArb := nUsers - 1
	if nArb < 1 {
		nArb = 1
	}
	arb := make([]int, nArb)
	for i := range arb {
		arb[i] = b.AddNode(fmt.Sprintf("a%d", i), Arbiter)
	}
	for i := 1; i < nArb; i++ {
		b.AddEdge(arb[(i-1)/2], arb[i])
	}
	// Attach users to arbiter nodes with spare degree, preferring the
	// deepest (heap order: latter nodes are deeper).
	users := make([]int, nUsers)
	for i := range users {
		users[i] = b.AddNode(fmt.Sprintf("u%d", i), User)
	}
	// In a heap-shaped tree of nArb nodes, nodes with index >=
	// (nArb-1)/2... distribute users round-robin over leaves first.
	degree := make([]int, nArb)
	for i := 1; i < nArb; i++ {
		degree[(i-1)/2]++
		degree[i]++
	}
	ui := 0
	for maxDeg := 3; ui < nUsers; maxDeg++ {
		for i := nArb - 1; i >= 0 && ui < nUsers; i-- {
			for degree[i] < maxDeg && ui < nUsers {
				b.AddEdge(arb[i], users[ui])
				degree[i]++
				ui++
			}
		}
	}
	return b.Build()
}

// Line builds a path of nArb arbiter nodes with one user at each end
// (diameter maximal for its size).
func Line(nArb int) (*Tree, error) {
	if nArb < 1 {
		return nil, fmt.Errorf("graph: need at least one arbiter node")
	}
	b := NewBuilder()
	arb := make([]int, nArb)
	for i := range arb {
		arb[i] = b.AddNode(fmt.Sprintf("a%d", i), Arbiter)
	}
	for i := 1; i < nArb; i++ {
		b.AddEdge(arb[i-1], arb[i])
	}
	u0 := b.AddNode("u0", User)
	u1 := b.AddNode("u1", User)
	b.AddEdge(arb[0], u0)
	b.AddEdge(arb[nArb-1], u1)
	return b.Build()
}

// Star builds a single arbiter node with nUsers users attached.
func Star(nUsers int) (*Tree, error) {
	if nUsers < 1 {
		return nil, fmt.Errorf("graph: need at least one user")
	}
	b := NewBuilder()
	a := b.AddNode("a0", Arbiter)
	for i := 0; i < nUsers; i++ {
		u := b.AddNode(fmt.Sprintf("u%d", i), User)
		b.AddEdge(a, u)
	}
	return b.Build()
}

// Figure32 builds the seven-node example graph of Figure 3.2: three
// users u1..u3 around a three-node arbiter a1..a3 (a2 central),
// matching the picture's topology.
func Figure32() (*Tree, error) {
	b := NewBuilder()
	a1 := b.AddNode("a1", Arbiter)
	a2 := b.AddNode("a2", Arbiter)
	a3 := b.AddNode("a3", Arbiter)
	u1 := b.AddNode("u1", User)
	u2 := b.AddNode("u2", User)
	u3 := b.AddNode("u3", User)
	b.AddEdge(a1, u1)
	b.AddEdge(a1, a2)
	b.AddEdge(a2, u2)
	b.AddEdge(a2, a3)
	b.AddEdge(a3, u3)
	return b.Build()
}

// SortedNames returns node names of the given IDs, sorted; a test
// convenience.
func (t *Tree) SortedNames(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.nodes[id].Name
	}
	sort.Strings(out)
	return out
}

// Random builds a pseudo-random tree with nArb arbiter nodes and
// nUsers users attached to random arbiters, deterministic in seed.
// Useful for randomized property tests across the arbiter packages.
func Random(seed int64, nArb, nUsers int) (*Tree, error) {
	if nArb < 1 || nUsers < 1 {
		return nil, fmt.Errorf("graph: need at least one arbiter and one user")
	}
	// A small linear-congruential generator keeps this package free of
	// math/rand while staying deterministic.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	b := NewBuilder()
	arb := make([]int, nArb)
	for i := range arb {
		arb[i] = b.AddNode(fmt.Sprintf("a%d", i), Arbiter)
	}
	for i := 1; i < nArb; i++ {
		b.AddEdge(arb[next(i)], arb[i])
	}
	for i := 0; i < nUsers; i++ {
		u := b.AddNode(fmt.Sprintf("u%d", i), User)
		b.AddEdge(arb[next(nArb)], u)
	}
	return b.Build()
}
