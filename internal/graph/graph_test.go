package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/testseed"
)

func figTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Figure32()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFigure32Shape(t *testing.T) {
	tr := figTree(t)
	if tr.N() != 6 || tr.EdgeCount() != 5 {
		t.Fatalf("N=%d e=%d", tr.N(), tr.EdgeCount())
	}
	if got := len(tr.NodesOf(User)); got != 3 {
		t.Errorf("users = %d", got)
	}
	if got := len(tr.NodesOf(Arbiter)); got != 3 {
		t.Errorf("arbiters = %d", got)
	}
	if d := tr.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4 (u1..a1 a2 a3..u3)", d)
	}
}

func TestBuilderRejectsNonTrees(t *testing.T) {
	b := NewBuilder()
	x := b.AddNode("x", Arbiter)
	y := b.AddNode("y", Arbiter)
	z := b.AddNode("z", Arbiter)
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	b.AddEdge(z, x) // cycle
	if _, err := b.Build(); err == nil {
		t.Error("cycle must be rejected")
	}
	b2 := NewBuilder()
	b2.AddNode("lonely", Arbiter)
	b2.AddNode("island", Arbiter)
	if _, err := b2.Build(); err == nil {
		t.Error("disconnected graph must be rejected")
	}
	b3 := NewBuilder()
	b3.AddNode("dup", Arbiter)
	b3.AddNode("dup", Arbiter)
	if _, err := b3.Build(); err == nil {
		t.Error("duplicate names must be rejected")
	}
}

func TestPointsToward(t *testing.T) {
	tr := figTree(t)
	byName := func(name string) int {
		for _, n := range tr.Nodes() {
			if n.Name == name {
				return n.ID
			}
		}
		t.Fatalf("no node %s", name)
		return -1
	}
	a1, a2, a3 := byName("a1"), byName("a2"), byName("a3")
	u1, u3 := byName("u1"), byName("u3")
	tests := []struct {
		v, w, z int
		want    bool
	}{
		{a1, a2, a3, true},  // a1→a2 heads toward a3
		{a2, a1, a3, false}, // wrong direction
		{a1, a2, u3, true},  // and toward u3 beyond a3
		{a1, u1, a3, false}, // edge into the leaf goes away from a3
		{a3, a2, u1, true},  // a3→a2 heads toward u1
		{a1, a2, a1, false}, // z == v: no edge points toward itself
		{u1, a1, u3, true},  // leaf edge toward the far side
		{a2, a3, u1, false}, // away from u1
	}
	for _, tc := range tests {
		if got := tr.PointsToward(tc.v, tc.w, tc.z); got != tc.want {
			t.Errorf("PointsToward(%s,%s,%s) = %t, want %t",
				tr.Node(tc.v).Name, tr.Node(tc.w).Name, tr.Node(tc.z).Name, got, tc.want)
		}
	}
}

func TestBetweenAndFirstRequester(t *testing.T) {
	tr := figTree(t)
	// a2's neighbor order is (a1, u2, a3).
	a2 := 1
	a1, u2, a3 := 0, 4, 2
	if got := tr.Between(a2, a1, a3); !reflect.DeepEqual(got, []int{u2}) {
		t.Errorf("Between(a2, a1, a3) = %v, want [u2]", got)
	}
	if got := tr.Between(a2, a3, a1); len(got) != 0 {
		t.Errorf("Between(a2, a3, a1) = %v, want empty (cyclic wrap)", got)
	}
	// (w,w) spans all other neighbors.
	if got := tr.Between(a2, a1, a1); len(got) != 2 {
		t.Errorf("Between(a2, a1, a1) = %v, want both others", got)
	}
	// First requester scanning after a1: u2 then a3 then a1.
	req := map[int]bool{a3: true, a1: true}
	if got := tr.FirstRequesterAfter(a2, a1, func(v int) bool { return req[v] }); got != a3 {
		t.Errorf("FirstRequesterAfter = %v, want a3", tr.Node(got).Name)
	}
	if got := tr.FirstRequesterAfter(a2, a1, func(int) bool { return false }); got != -1 {
		t.Errorf("no requester should give -1, got %d", got)
	}
}

func TestPathLen(t *testing.T) {
	tr := figTree(t)
	tests := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{3, 5, 4}, // u1 to u3
		{3, 4, 3}, // u1 to u2
	}
	for _, tc := range tests {
		if got := tr.PathLen(tc.a, tc.b); got != tc.want {
			t.Errorf("PathLen(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := tr.PathLen(tc.b, tc.a); got != tc.want {
			t.Errorf("PathLen asymmetric for (%d,%d)", tc.a, tc.b)
		}
	}
}

func TestAugment(t *testing.T) {
	tr := figTree(t)
	aug, err := Augment(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Two arbiter-arbiter edges gain buffers.
	if got := len(aug.NodesOf(Buffer)); got != 2 {
		t.Fatalf("buffers = %d, want 2", got)
	}
	if aug.N() != tr.N()+2 || aug.EdgeCount() != tr.EdgeCount()+2 {
		t.Errorf("augmented sizes wrong: N=%d e=%d", aug.N(), aug.EdgeCount())
	}
	// Original node IDs preserved.
	for _, n := range tr.Nodes() {
		if aug.Node(n.ID).Name != n.Name {
			t.Errorf("node %d renamed: %s vs %s", n.ID, aug.Node(n.ID).Name, n.Name)
		}
	}
	// Buffers have degree 2 and sit between their arbiters.
	for _, b := range aug.NodesOf(Buffer) {
		if aug.Degree(b) != 2 {
			t.Errorf("buffer %s degree %d", aug.Node(b).Name, aug.Degree(b))
		}
		for _, nb := range aug.Neighbors(b) {
			if aug.Node(nb).Kind != Arbiter {
				t.Errorf("buffer %s adjacent to non-arbiter %s", aug.Node(b).Name, aug.Node(nb).Name)
			}
		}
	}
	// Neighbor ORDER of original nodes is preserved (with buffers
	// substituted); this matters for the round-robin grant rule.
	a2 := 1
	origOrder := tr.Neighbors(a2)
	augOrder := aug.Neighbors(a2)
	if len(origOrder) != len(augOrder) {
		t.Fatal("degree changed")
	}
	for i := range origOrder {
		o, g := origOrder[i], augOrder[i]
		if tr.Node(o).Kind == Arbiter {
			if aug.Node(g).Kind != Buffer {
				t.Errorf("slot %d: want buffer, got %s", i, aug.Node(g).Name)
			}
		} else if o != g {
			t.Errorf("slot %d: user moved", i)
		}
	}
	// No user-arbiter edge gained a buffer.
	for _, u := range aug.NodesOf(User) {
		if aug.Node(aug.UserAttachment(u)).Kind != Arbiter {
			t.Errorf("user %s attached to %s", aug.Node(u).Name, aug.Node(aug.UserAttachment(u)).Name)
		}
	}
}

func TestBinaryTreeProperties(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 7, 8, 16, 33}
	for _, n := range sizes {
		tr, err := BinaryTree(n)
		if err != nil {
			t.Fatalf("BinaryTree(%d): %v", n, err)
		}
		if got := len(tr.NodesOf(User)); got != n {
			t.Errorf("BinaryTree(%d) users = %d", n, got)
		}
		// Users are leaves.
		for _, u := range tr.NodesOf(User) {
			if tr.Degree(u) != 1 {
				t.Errorf("user %s degree %d", tr.Node(u).Name, tr.Degree(u))
			}
		}
		// Tree invariant is checked by Build; diameter grows ~2 log n.
		if n >= 4 && tr.Diameter() > 2*(2+log2(n)) {
			t.Errorf("BinaryTree(%d) diameter %d too large", n, tr.Diameter())
		}
	}
	if _, err := BinaryTree(0); err == nil {
		t.Error("BinaryTree(0) must fail")
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func TestLineAndStar(t *testing.T) {
	l, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Diameter() != 6 {
		t.Errorf("Line(5) diameter = %d, want 6", l.Diameter())
	}
	s, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Diameter() != 2 || len(s.NodesOf(User)) != 4 {
		t.Errorf("Star(4) wrong: d=%d", s.Diameter())
	}
}

// Property: for random trees, PointsToward(v,w,z) holds for exactly
// one directed orientation of each edge on the path to z, and
// PathLen is a metric along edges.
func TestPointsTowardProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%6) + 3
		b := NewBuilder()
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			kind := Arbiter
			if i >= n-2 { // last two nodes are leaves/users
				kind = User
			}
			ids[i] = b.AddNode(nodeName(i), kind)
		}
		for i := 1; i < n; i++ {
			parent := (int(seed) + i*7) % i
			b.AddEdge(ids[parent], ids[i])
		}
		tr, err := b.Build()
		if err != nil {
			// Users may be internal; rebuild with all-arbiter nodes.
			return true
		}
		for v := 0; v < n; v++ {
			for _, w := range tr.Neighbors(v) {
				for z := 0; z < n; z++ {
					if z == v {
						if tr.PointsToward(v, w, z) {
							return false
						}
						continue
					}
					// Exactly one of (v,w),(w,v) on the v—w edge
					// points toward z unless z is... (v,w) toward z
					// iff w is on the path v→z; (w,v) toward z iff v
					// on path w→z. For z≠v,w exactly one holds; for
					// z==w only (v,w).
					vw := tr.PointsToward(v, w, z)
					wv := tr.PointsToward(w, v, z)
					if z == w {
						if !vw || wv {
							return false
						}
					} else if vw == wv {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, testseed.Quick(t, 30)); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}
