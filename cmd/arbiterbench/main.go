// Command arbiterbench regenerates the quantitative results of §3.4 of
// Lynch & Tuttle 1987: the light-load (Theorem 50) and heavy-load
// (Theorem 52) response-time bounds of Schönhage's arbiter, the
// combined-message ablation, and the comparison against the [LF81]
// round-robin and tournament arbiters.
//
// It also runs the registered measurement sweeps (bench.Sweeps): one
// `-sweep <name>` flag selects a sweep by registry name and
// `-sweep-out <file>` writes its rows as the canonical JSON artifact.
// Registered sweeps: explore (E15, BENCH_explore.json), store (E18),
// obs (E17), stabilize (E19), reduction (E20), induct (E21), and dist
// (E23, BENCH_dist.json — the grid census measured in-RAM, through
// the disk-spilling store, and across the multi-process cluster). The
// pre-registry flag triples (-explore/-explore-out, -store-bench/...,
// -obs-bench/..., -stabilize-bench/..., -reduction/...,
// -induct-bench/...) survive one release as deprecated aliases for
// the same sweeps. -obs-addr serves live expvar and pprof endpoints
// for the duration of any run.
//
// The exploration knobs (-workers, -limit, -dedup, -spill-dir,
// -dist-*) are the shared set registered by explore.BindFlags —
// identical flags and defaults in ioasim (the -dist-* cluster flags
// act only in ioasim, which hosts the coordinator/worker modes).
// -workers also sizes the chaos sweep's per-state safety pool.
//
// Usage:
//
//	arbiterbench [-b bound] [-seed n] [-max n] [-quick]
//	             [-workers n] [-limit n] [-dedup]
//	             [-sweep explore|store|obs|stabilize|reduction|induct|dist]
//	             [-sweep-out file]
//	             [-explore-users n] [-store-users n] [-obs-users n]
//	             [-stabilize-sizes n]
//	             [-chaos] [-recover-within k]
//	             [-bench-gate] [-gate-dir d] [-gate-threshold x] [-gate-handicap m]
//	             [-obs-addr host:port] [-ledger-out file]
//
// The -induct-bench sweep (E21) certifies safety invariants by
// one-step induction over complete candidate domains — the closed
// level-1 arbiter, Dijkstra's token ring, the LeLann ring, Burns'
// mutex over a reachable domain, and Lamport's bounded-clock mutex —
// and prices each certificate against a full reachability run of the
// same system. The headline rows walk multi-million-state domains
// (Dijkstra 8^8 = 16.7M, Lamport 9.1M at channel capacity 2) in O(1)
// resident memory; -quick drops them. -induct-out writes the rows as
// JSON (BENCH_induct.json).
//
// The -reduction sweep (E20) measures symmetry quotienting and
// ample-set partial-order reduction against unreduced exploration on
// the closed arbiter systems (spec arbiter under Sₙ, binary-tree and
// star level-3 under POR, the star additionally under its free Zₙ
// rotation group), cross-checking the mutual-exclusion verdict in
// every mode; -reduction-out writes the rows as JSON
// (BENCH_reduction.json). With -quick the sweep shrinks to smoke
// sizes.
//
// The -stabilize-bench sweep (E19) certifies self-stabilization:
// Dijkstra's K-state token ring over ring sizes up to -stabilize-sizes
// (full corruption envelope at K=n, a single-corruption spot envelope,
// and the K=n-2 boundary where stabilization provably fails), plus the
// LeLann ring under crash corruption as the negative control. Rows
// carry the certifier's closure/convergence verdicts and the measured
// worst-case rounds-to-legitimacy; -stabilize-out writes them as JSON
// (BENCH_stabilize.json).
//
// The -chaos flag runs only the chaos sweep, with the recovery
// criterion set by -recover-within (default 60): each cell reports its
// longest safety outage and service gap, and passes when both are
// within the window. A fault-free cell failing recovery exits
// non-zero — the CI smoke gate. -recover-within also applies to the
// chaos sweep at the end of the default full run.
//
// The -bench-gate mode (E22) is the trajectory regression gate: it
// re-runs the obs and store sweeps fresh at the canonical gate
// configurations, compares state counts exactly and wall times within
// -gate-threshold (default 5x) against the committed BENCH_*.json
// files under -gate-dir (default "."), structurally validates the
// expensive trajectory files, and exits non-zero on any regression.
// -gate-handicap multiplies fresh wall times before comparison — the
// CI negative arm runs with a large handicap and requires failure.
//
// -ledger-out appends one schema-versioned provenance record per
// invocation (mode, seed, flags, wall time, verdict) to a JSONL run
// ledger shared with ioasim; see internal/ledger.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/testseed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arbiterbench: ")
	var (
		b            = flag.Float64("b", 1, "per-step time bound b")
		seed         = flag.Int64("seed", 1, "scheduler tie-break seed")
		maxN         = flag.Int("max", 64, "largest user count in sweeps")
		quick        = flag.Bool("quick", false, "small sweep for smoke testing")
		ex           = explore.BindFlags(flag.CommandLine)
		sweepName    = flag.String("sweep", "", "run one registered sweep by name and exit (see bench.Sweeps)")
		sweepOut     = flag.String("sweep-out", "", "write the -sweep rows as JSON to this file")
		exploreRun   = flag.Bool("explore", false, "deprecated: alias for -sweep explore")
		exploreUsers = flag.Int("explore-users", 6, "users per arbiter instance in the explore sweep")
		exploreOut   = flag.String("explore-out", "", "deprecated: alias for -sweep-out (explore sweep)")
		storeBench   = flag.Bool("store-bench", false, "deprecated: alias for -sweep store")
		storeUsers   = flag.Int("store-users", 6, "users per arbiter instance in the store sweep")
		storeOut     = flag.String("store-bench-out", "", "deprecated: alias for -sweep-out (store sweep)")
		obsBench     = flag.Bool("obs-bench", false, "deprecated: alias for -sweep obs")
		obsUsers     = flag.Int("obs-users", 6, "users per arbiter instance in the obs sweep")
		obsOut       = flag.String("obs-bench-out", "", "deprecated: alias for -sweep-out (obs sweep)")
		stabBench    = flag.Bool("stabilize-bench", false, "deprecated: alias for -sweep stabilize")
		stabSizes    = flag.Int("stabilize-sizes", 4, "largest Dijkstra ring size in the stabilize sweep")
		stabOut      = flag.String("stabilize-out", "", "deprecated: alias for -sweep-out (stabilize sweep)")
		reduction    = flag.Bool("reduction", false, "deprecated: alias for -sweep reduction")
		reductionOut = flag.String("reduction-out", "", "deprecated: alias for -sweep-out (reduction sweep)")
		inductBench  = flag.Bool("induct-bench", false, "deprecated: alias for -sweep induct")
		inductOut    = flag.String("induct-out", "", "deprecated: alias for -sweep-out (induct sweep)")
		chaosOnly    = flag.Bool("chaos", false, "run only the chaos sweep; exit non-zero if a fault-free cell fails recovery")
		recoverIn    = flag.Int("recover-within", 60, "chaos recovery window k in states/steps (0 disables the criterion)")
		obsAddr      = flag.String("obs-addr", "", "serve live expvar + pprof debug endpoints on this address (e.g. :6060)")
		benchGate    = flag.Bool("bench-gate", false, "re-run the cheap sweeps against the committed BENCH_*.json trajectory and exit non-zero on regression")
		gateDir      = flag.String("gate-dir", ".", "directory holding the committed BENCH_*.json files for -bench-gate")
		gateThresh   = flag.Float64("gate-threshold", 5, "tolerated wall-clock slowdown ratio in -bench-gate")
		gateHandicap = flag.Float64("gate-handicap", 1, "multiplier on fresh wall times in -bench-gate (>1 is the synthetic-regression negative arm)")
		ledgerOut    = flag.String("ledger-out", "", "append a provenance record per run to this JSONL journal")
	)
	flag.Parse()

	var led *ledger.Ledger
	if *ledgerOut != "" {
		f, err := os.OpenFile(*ledgerOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("ledger: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("ledger: %v", err)
			}
		}()
		led = ledger.New(f, ledger.Options{})
	}
	started := testseed.Now()
	// record journals one provenance record; nil-safe on the ledger so
	// every mode branch can call it unconditionally.
	record := func(mode string, states int64, verdict, detail string, artifacts ...string) {
		if led == nil {
			return
		}
		flags := make(map[string]string)
		flag.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
		r := ledger.Run{
			Tool: "arbiterbench", Mode: mode, Seed: *seed,
			Workers: ex.Workers(), Limit: ex.Limit(), Flags: flags,
			WallNS: testseed.Now().Sub(started).Nanoseconds(),
			States: states, Verdict: verdict, Detail: detail,
		}
		for _, a := range artifacts {
			if a != "" {
				r.Artifacts = append(r.Artifacts, a)
			}
		}
		if err := led.Record(r); err != nil {
			log.Printf("ledger: %v", err)
		}
	}

	if *obsAddr != "" {
		addr, stop, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("obs: %v", err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("obs: %v", err)
			}
		}()
		fmt.Printf("obs: serving http://%s/debug/vars and /debug/pprof/\n", addr)
	}

	if *benchGate {
		res, err := bench.Gate(bench.GateConfig{Dir: *gateDir, Threshold: *gateThresh, Handicap: *gateHandicap})
		if err != nil {
			record("bench-gate", 0, "fail", err.Error())
			log.Fatalf("bench gate: %v", err)
		}
		bench.PrintGate(os.Stdout, res)
		verdict := "ok"
		if res.Regressions > 0 {
			verdict = "fail"
		}
		record("bench-gate", int64(len(res.Checks)), verdict,
			fmt.Sprintf("%d regressions in %d checks (threshold %.1f, handicap %.1f)",
				res.Regressions, len(res.Checks), *gateThresh, *gateHandicap))
		if res.Regressions > 0 {
			log.Fatalf("bench gate: %d regressions against the committed trajectory", res.Regressions)
		}
		return
	}

	// Resolve the deprecated per-sweep flag triples onto the registry
	// surface; -sweep/-sweep-out win when both are given.
	name, out := *sweepName, *sweepOut
	for _, a := range []struct {
		set        bool
		flag, name string
		out        string
	}{
		{*exploreRun, "explore", "explore", *exploreOut},
		{*storeBench, "store-bench", "store", *storeOut},
		{*obsBench, "obs-bench", "obs", *obsOut},
		{*stabBench, "stabilize-bench", "stabilize", *stabOut},
		{*reduction, "reduction", "reduction", *reductionOut},
		{*inductBench, "induct-bench", "induct", *inductOut},
	} {
		if !a.set {
			continue
		}
		log.Printf("-%s is deprecated; use -sweep %s", a.flag, a.name)
		if name == "" {
			name = a.name
		}
		if out == "" {
			out = a.out
		}
	}

	if name != "" {
		sw, err := bench.FindSweep(name)
		if err != nil {
			log.Fatal(err)
		}
		users := 0
		switch name {
		case "explore":
			users = *exploreUsers
		case "store":
			users = *storeUsers
		case "obs":
			users = *obsUsers
		}
		rows, n, err := sw.Run(bench.SweepConfig{
			Users: users, Sizes: *stabSizes,
			Workers: ex.Workers(), Limit: ex.Limit(), Quick: *quick,
		})
		if err != nil {
			record("sweep-"+name, 0, "fail", err.Error())
			log.Fatalf("%s sweep: %v", name, err)
		}
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				log.Fatalf("%s out: %v", name, err)
			}
			if err := bench.WriteSweepJSON(f, rows); err != nil {
				log.Fatalf("%s out: %v", name, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("%s out: %v", name, err)
			}
		}
		record("sweep-"+name, int64(n), "ok", fmt.Sprintf("%d rows", n), out)
		return
	}

	if *chaosOnly {
		if err := runChaos(ex.Workers(), *quick, *recoverIn, true); err != nil {
			record("chaos", 0, "fail", err.Error())
			log.Fatalf("chaos sweep: %v", err)
		}
		record("chaos", 0, "ok", "")
		return
	}

	sizes := sweep(*maxN)
	if *quick {
		sizes = sweep(8)
	}

	rows, err := bench.Theorem50(sizes, *b, graph.BinaryTree, *seed)
	if err != nil {
		log.Fatalf("theorem 50 (binary): %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 50 — light load, binary trees (bound 2bd)", rows)

	lineSizes := sizes
	rows, err = bench.Theorem50(lineSizes, *b, func(n int) (*graph.Tree, error) {
		return graph.Line(n)
	}, *seed)
	if err != nil {
		log.Fatalf("theorem 50 (line): %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 50 — light load, line graphs (bound 2bd)", rows)

	rows, err = bench.Theorem52(sizes, *b, false, *seed)
	if err != nil {
		log.Fatalf("theorem 52: %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 52 — heavy load, binary trees (bound 3be−b)", rows)

	rows, err = bench.Theorem52(sizes, *b, true, *seed)
	if err != nil {
		log.Fatalf("combined messages: %v", err)
	}
	bench.PrintRows(os.Stdout, "§3.4 remark — combined grant+request (bound 2be)", rows)

	cmp, err := bench.Comparison(sizes, *b, *seed)
	if err != nil {
		log.Fatalf("comparison: %v", err)
	}
	bench.PrintComparison(os.Stdout, cmp)

	distSizes := sizes
	if len(distSizes) > 4 {
		distSizes = distSizes[:4] // the A3 state space is the costly one
	}
	dvg, err := bench.DistVsGraph(distSizes, *b, *seed)
	if err != nil {
		log.Fatalf("dist vs graph: %v", err)
	}
	title := "Cross-level check — heavy-load max response at A2 (over G) vs A3 (bound 3b·e(𝒢)−b)"
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
	fmt.Printf("%4s %6s %6s %10s %10s %10s %s\n", "n", "e(G)", "e(𝒢)", "A2 max", "A3 max", "bound", "ok")
	for _, r := range dvg {
		fmt.Printf("%4d %6d %6d %10.1f %10.1f %10.1f %t\n",
			r.N, r.EG, r.EAug, r.A2Max, r.A3Max, r.BoundAug, r.Within)
	}
	fmt.Println()

	if err := runChaos(ex.Workers(), *quick, *recoverIn, false); err != nil {
		log.Fatalf("chaos sweep: %v", err)
	}

	record("full", 0, "ok", "")
	fmt.Println("done")
}

// runChaos runs the chaos sweep over the Figure 3.2 tree with the
// recovery criterion enabled. With gate set, a fault-free cell that
// fails to recover within the window is an error — the CI smoke
// contract: retry-hardened A₃ʳ without injected faults must never
// exceed the outage or service-gap budget.
func runChaos(workers int, quick bool, recoverWithin int, gate bool) error {
	steps := 4000
	seeds := []int64{1, 2, 5}
	if quick {
		steps = 2000
		seeds = seeds[:1]
	}
	tr, err := graph.Figure32()
	if err != nil {
		return fmt.Errorf("figure 3.2: %v", err)
	}
	rows, err := bench.Chaos(bench.ChaosConfig{
		Tree:          tr,
		Holder:        0,
		Profiles:      bench.DefaultChaosProfiles(),
		Seeds:         seeds,
		Steps:         steps,
		Workers:       workers,
		RecoverWithin: recoverWithin,
	})
	if err != nil {
		return err
	}
	bench.PrintChaos(os.Stdout, rows)
	if gate && recoverWithin > 0 {
		for _, r := range rows {
			if r.Profile.Zero() && !r.Recovered {
				return fmt.Errorf("fault-free cell %s seed %d (hardened=%t) failed recovery: outage %d, gap %d, window %d",
					r.Profile, r.Seed, r.Hardened, r.MaxOutage, r.MaxServiceGap, recoverWithin)
			}
		}
	}
	return nil
}

// sweep yields powers of two from 2 up to max.
func sweep(maxN int) []int {
	var out []int
	for n := 2; n <= maxN; n *= 2 {
		out = append(out, n)
	}
	return out
}
