// Command arbiterbench regenerates the quantitative results of §3.4 of
// Lynch & Tuttle 1987: the light-load (Theorem 50) and heavy-load
// (Theorem 52) response-time bounds of Schönhage's arbiter, the
// combined-message ablation, and the comparison against the [LF81]
// round-robin and tournament arbiters.
//
// It also measures the exploration engine itself: the -explore sweep
// times sequential (cached and uncached) against parallel sharded
// reachability on the closed arbiter levels 1–3 and can emit the rows
// as JSON (BENCH_explore.json) with -explore-out. The -store-bench
// sweep (E18) times the PR-4 string-keyed reference explorer against
// the interned store-backed engine, sequential and parallel, emitted
// as JSON (BENCH_store.json) with -store-bench-out. The -obs-bench
// sweep prices the observability layer (E17): parallel reachability
// with observability off (the nil fast path) versus fully on, emitted
// as JSON (BENCH_obs.json) with -obs-bench-out. -obs-addr serves live
// expvar and pprof endpoints for the duration of any run.
//
// The exploration knobs (-workers, -limit, -dedup) are the shared set
// registered by explore.BindFlags — identical flags and defaults in
// ioasim. -workers also sizes the chaos sweep's per-state safety pool.
//
// Usage:
//
//	arbiterbench [-b bound] [-seed n] [-max n] [-quick]
//	             [-workers n] [-limit n] [-dedup]
//	             [-explore] [-explore-users n] [-explore-out file]
//	             [-store-bench] [-store-users n] [-store-bench-out file]
//	             [-obs-bench] [-obs-users n] [-obs-bench-out file]
//	             [-obs-addr host:port]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arbiterbench: ")
	var (
		b            = flag.Float64("b", 1, "per-step time bound b")
		seed         = flag.Int64("seed", 1, "scheduler tie-break seed")
		maxN         = flag.Int("max", 64, "largest user count in sweeps")
		quick        = flag.Bool("quick", false, "small sweep for smoke testing")
		ex           = explore.BindFlags(flag.CommandLine)
		exploreRun   = flag.Bool("explore", false, "run the serial-vs-parallel reachability sweep and exit")
		exploreUsers = flag.Int("explore-users", 6, "users per arbiter instance in the -explore sweep")
		exploreOut   = flag.String("explore-out", "", "write -explore rows as JSON to this file")
		storeBench   = flag.Bool("store-bench", false, "run the reference-vs-interned-store sweep and exit")
		storeUsers   = flag.Int("store-users", 6, "users per arbiter instance in the -store-bench sweep")
		storeOut     = flag.String("store-bench-out", "", "write -store-bench rows as JSON to this file")
		obsBench     = flag.Bool("obs-bench", false, "run the observability-overhead sweep and exit")
		obsUsers     = flag.Int("obs-users", 3, "users per arbiter instance in the -obs-bench sweep")
		obsOut       = flag.String("obs-bench-out", "", "write -obs-bench rows as JSON to this file")
		obsAddr      = flag.String("obs-addr", "", "serve live expvar + pprof debug endpoints on this address (e.g. :6060)")
	)
	flag.Parse()

	if *obsAddr != "" {
		addr, stop, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("obs: %v", err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("obs: %v", err)
			}
		}()
		fmt.Printf("obs: serving http://%s/debug/vars and /debug/pprof/\n", addr)
	}

	if *obsBench {
		rows, err := bench.ObsSweep(bench.ObsConfig{Users: *obsUsers, Workers: 2, Reps: 3})
		if err != nil {
			log.Fatalf("obs sweep: %v", err)
		}
		bench.PrintObs(os.Stdout, rows)
		if *obsOut != "" {
			f, err := os.Create(*obsOut)
			if err != nil {
				log.Fatalf("obs out: %v", err)
			}
			if err := bench.WriteObsJSON(f, rows); err != nil {
				log.Fatalf("obs out: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("obs out: %v", err)
			}
		}
		return
	}

	if *storeBench {
		var ws []int
		if w := ex.Workers(); w > 1 {
			ws = []int{w}
		}
		rows, err := bench.StoreSweep(bench.StoreConfig{Users: *storeUsers, Limit: ex.Limit(), Workers: ws, Reps: 3})
		if err != nil {
			log.Fatalf("store sweep: %v", err)
		}
		bench.PrintStore(os.Stdout, rows)
		if *storeOut != "" {
			f, err := os.Create(*storeOut)
			if err != nil {
				log.Fatalf("store out: %v", err)
			}
			if err := bench.WriteStoreJSON(f, rows); err != nil {
				log.Fatalf("store out: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("store out: %v", err)
			}
		}
		return
	}

	if *exploreRun {
		rows, err := bench.ExploreSweep(bench.ExploreConfig{Users: *exploreUsers, Reps: 3})
		if err != nil {
			log.Fatalf("explore sweep: %v", err)
		}
		bench.PrintExplore(os.Stdout, rows)
		if *exploreOut != "" {
			f, err := os.Create(*exploreOut)
			if err != nil {
				log.Fatalf("explore out: %v", err)
			}
			if err := bench.WriteExploreJSON(f, rows); err != nil {
				log.Fatalf("explore out: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("explore out: %v", err)
			}
		}
		return
	}

	sizes := sweep(*maxN)
	if *quick {
		sizes = sweep(8)
	}

	rows, err := bench.Theorem50(sizes, *b, graph.BinaryTree, *seed)
	if err != nil {
		log.Fatalf("theorem 50 (binary): %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 50 — light load, binary trees (bound 2bd)", rows)

	lineSizes := sizes
	rows, err = bench.Theorem50(lineSizes, *b, func(n int) (*graph.Tree, error) {
		return graph.Line(n)
	}, *seed)
	if err != nil {
		log.Fatalf("theorem 50 (line): %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 50 — light load, line graphs (bound 2bd)", rows)

	rows, err = bench.Theorem52(sizes, *b, false, *seed)
	if err != nil {
		log.Fatalf("theorem 52: %v", err)
	}
	bench.PrintRows(os.Stdout, "Theorem 52 — heavy load, binary trees (bound 3be−b)", rows)

	rows, err = bench.Theorem52(sizes, *b, true, *seed)
	if err != nil {
		log.Fatalf("combined messages: %v", err)
	}
	bench.PrintRows(os.Stdout, "§3.4 remark — combined grant+request (bound 2be)", rows)

	cmp, err := bench.Comparison(sizes, *b, *seed)
	if err != nil {
		log.Fatalf("comparison: %v", err)
	}
	bench.PrintComparison(os.Stdout, cmp)

	distSizes := sizes
	if len(distSizes) > 4 {
		distSizes = distSizes[:4] // the A3 state space is the costly one
	}
	dvg, err := bench.DistVsGraph(distSizes, *b, *seed)
	if err != nil {
		log.Fatalf("dist vs graph: %v", err)
	}
	title := "Cross-level check — heavy-load max response at A2 (over G) vs A3 (bound 3b·e(𝒢)−b)"
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
	fmt.Printf("%4s %6s %6s %10s %10s %10s %s\n", "n", "e(G)", "e(𝒢)", "A2 max", "A3 max", "bound", "ok")
	for _, r := range dvg {
		fmt.Printf("%4d %6d %6d %10.1f %10.1f %10.1f %t\n",
			r.N, r.EG, r.EAug, r.A2Max, r.A3Max, r.BoundAug, r.Within)
	}
	fmt.Println()

	chaosSteps := 4000
	chaosSeeds := []int64{1, 2, 5}
	if *quick {
		chaosSteps = 2000
		chaosSeeds = chaosSeeds[:1]
	}
	tr, err := graph.Figure32()
	if err != nil {
		log.Fatalf("figure 3.2: %v", err)
	}
	chaos, err := bench.Chaos(bench.ChaosConfig{
		Tree:     tr,
		Holder:   0,
		Profiles: bench.DefaultChaosProfiles(),
		Seeds:    chaosSeeds,
		Steps:    chaosSteps,
		Workers:  ex.Workers(),
	})
	if err != nil {
		log.Fatalf("chaos sweep: %v", err)
	}
	bench.PrintChaos(os.Stdout, chaos)

	fmt.Println("done")
}

// sweep yields powers of two from 2 up to max.
func sweep(maxN int) []int {
	var out []int
	for n := 2; n <= maxN; n *= 2 {
		out = append(out, n)
	}
	return out
}
