// Command ioalint runs the repository's static analyzer suite
// (internal/lint): five stdlib-only analyzers that enforce the IOA
// model's semantic contracts before anything executes — nondet,
// purestep, partition, lockcopy, and errflow.
//
// Usage:
//
//	ioalint [-json] [-list] [-enable a,b] [-disable c] [patterns...]
//
// Patterns are package directories or "dir/..." trees (default
// "./..."); testdata directories are skipped by tree patterns but may
// be named explicitly, which is how CI proves the suite still fails
// on seeded violations.
//
// Exit codes: 0 — no diagnostics; 1 — diagnostics reported; 2 — usage
// or load error (unparseable source, type errors, unknown analyzer).
//
// Diagnostics print as file:line:col: message [analyzer]; with -json
// they are emitted as a JSON array of objects with analyzer, file,
// line, col, and message fields. A site can be suppressed with
// "//lint:ignore <analyzer>[,<analyzer>|all] <reason>" on the same
// line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("ioalint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		jsonOut = flags.Bool("json", false, "emit diagnostics as JSON")
		list    = flags.Bool("list", false, "list registered analyzers and exit")
		enable  = flags.String("enable", "", "comma-separated analyzers to run (default all)")
		disable = flags.String("disable", "", "comma-separated analyzers to skip")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "ioalint:", err)
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "ioalint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "ioalint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "ioalint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ioalint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "ioalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "ioalint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves -enable/-disable into the analyzer set.
func selectAnalyzers(enable, disable string) ([]lint.Analyzer, error) {
	byName := func(csv string) ([]lint.Analyzer, error) {
		var out []lint.Analyzer
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := lint.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out = append(out, a)
		}
		return out, nil
	}
	analyzers := lint.All()
	if enable != "" {
		picked, err := byName(enable)
		if err != nil {
			return nil, err
		}
		analyzers = picked
	}
	if disable != "" {
		dropped, err := byName(disable)
		if err != nil {
			return nil, err
		}
		skip := make(map[string]bool, len(dropped))
		for _, a := range dropped {
			skip[a.Name()] = true
		}
		var kept []lint.Analyzer
		for _, a := range analyzers {
			if !skip[a.Name()] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}
