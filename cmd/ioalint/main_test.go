package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCleanOnRepo is the CLI-level acceptance check: running the
// full suite over the repository tree exits 0 with no output.
func TestRunCleanOnRepo(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d on clean repo\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected output on clean repo:\n%s", stdout.String())
	}
}

// TestRunFailsOnFixture proves the suite can fail: naming a testdata
// fixture directory explicitly must exit 1, and -json must emit a
// parseable array of diagnostics.
func TestRunFailsOnFixture(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "../../internal/lint/testdata/src/nondetpos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d on seeded violations, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("-json output not a diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json emitted an empty array for a failing fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "nondet" {
			t.Errorf("unexpected analyzer %q in %+v", d.Analyzer, d)
		}
	}
}

// TestRunFlagHandling covers -list and the unknown-analyzer error path.
func TestRunFlagHandling(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"nondet", "purestep", "partition", "lockcopy", "errflow"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("missing unknown-analyzer message:\n%s", stderr.String())
	}
}
