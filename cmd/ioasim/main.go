// Command ioasim simulates the systems built in this repository: the
// figure examples of Chapter 2, Schönhage's arbiter at each of its
// three levels of abstraction (closed with user automata), and the
// token-ring arbiter.
//
// Usage:
//
//	ioasim -system fig21|fig22|fig23c|arbiter1|arbiter2|arbiter3|arbiter3r|ring|mutex
//	       [-steps n] [-policy rr|random] [-seed n] [-users n]
//	       [-faults drop=0.1,dup=0.05,delay=3] [-fault-seed n]
//	       [-trace] [-json] [-dot] [-reach] [-workers n] [-limit n]
//
// The -reach flag explores the system's reachable state space instead
// of simulating it, reporting the state count and deadlocks; -workers
// selects the sharded parallel explorer (0 = GOMAXPROCS, 1 =
// sequential), whose results are bit-identical to the sequential
// explorer at any worker count. -limit bounds the exploration.
//
// The -faults flag injects seeded channel faults into the distributed
// arbiter systems: arbiter3 runs the plain A₃ over the faulty channels
// (and visibly starves or deadlocks under loss), arbiter3r runs the
// retry-hardened A₃ʳ whose alternating-bit links mask loss and
// duplication. Fault decisions are a pure function of (-fault-seed,
// channel, message sequence number), so runs are reproducible. The
// fault classes are drop (loss rate), dup (duplication rate), and
// delay (reordering bound; tolerated by neither variant — the
// alternating-bit links assume FIFO channels).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/arbiter/dist"
	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/mutex"
	"repro/internal/ring"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ioasim: ")
	var (
		system  = flag.String("system", "arbiter3", "system to simulate")
		steps   = flag.Int("steps", 100, "maximum steps")
		policy  = flag.String("policy", "rr", "scheduling policy: rr or random")
		seed    = flag.Int64("seed", 1, "seed for the random policy")
		nUsers  = flag.Int("users", 3, "number of users (arbiter systems)")
		trace   = flag.Bool("trace", false, "print the full step trace")
		jsonOut = flag.Bool("json", false, "emit the trace as JSON events on stdout")
		dotOut  = flag.Bool("dot", false, "emit the reachable state graph in Graphviz DOT format and exit")
		faultsF = flag.String("faults", "none", "channel fault profile, e.g. drop=0.1,dup=0.05,delay=3 (arbiter3/arbiter3r)")
		faultSd = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		reach   = flag.Bool("reach", false, "explore the reachable state space instead of simulating")
		workers = flag.Int("workers", 0, "exploration workers for -reach (0 = GOMAXPROCS, 1 = sequential)")
		limit   = flag.Int("limit", 0, "state budget for -reach (0 = default)")
	)
	flag.Parse()

	prof, err := faults.ParseProfile(*faultsF)
	if err != nil {
		log.Fatal(err)
	}
	auto, err := buildSystem(*system, *nUsers, prof, *faultSd)
	if err != nil {
		log.Fatal(err)
	}
	if *dotOut {
		if err := explore.WriteDOT(os.Stdout, auto, 4096); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *reach {
		opts := explore.Options{Workers: *workers, Limit: *limit}
		states, err := explore.ReachOpts(auto, opts)
		truncated := false
		if err != nil {
			if !errors.Is(err, explore.ErrLimit) {
				log.Fatal(err)
			}
			truncated = true
		}
		fmt.Printf("%s: %d reachable states", auto.Name(), len(states))
		if truncated {
			fmt.Printf(" (truncated at state budget; pass a larger -limit)")
			fmt.Println()
			return
		}
		fmt.Println()
		dead, err := explore.DeadlocksOpts(auto, opts)
		if err != nil {
			log.Fatal(err)
		}
		if len(dead) == 0 {
			fmt.Println("no quiescent states")
		} else {
			fmt.Printf("%d quiescent states (nothing locally controlled enabled); first: %s\n",
				len(dead), dead[0].Key())
		}
		return
	}
	var p sim.Policy
	switch *policy {
	case "rr":
		p = &sim.RoundRobin{}
	case "random":
		p = sim.NewRandom(*seed)
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	x, err := sim.Run(auto, p, *steps, nil)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, x); err != nil {
			log.Fatal(err)
		}
		return
	}
	report(auto, x, *trace)
}

// event is one step of a trace in the JSON export format.
type event struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
	State  string `json:"state"`
}

// writeJSON emits the execution as a JSON array of events, preceded by
// the initial state, for consumption by external tooling.
func writeJSON(w io.Writer, x *ioa.Execution) error {
	events := make([]event, 0, x.Len()+1)
	events = append(events, event{Step: 0, Action: "", State: x.States[0].Key()})
	for i, act := range x.Acts {
		events = append(events, event{Step: i + 1, Action: string(act), State: x.States[i+1].Key()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

func buildSystem(name string, nUsers int, prof faults.Profile, faultSeed int64) (ioa.Automaton, error) {
	switch name {
	case "arbiter3", "arbiter3r":
		// Handled below; every other system rejects fault injection.
	default:
		if !prof.Zero() {
			return nil, fmt.Errorf("-faults applies to arbiter3 and arbiter3r only, not %q", name)
		}
	}
	switch name {
	case "fig21":
		return figures.Fig21(), nil
	case "fig22":
		return figures.Fig22(), nil
	case "fig23c":
		return figures.Fig23C(), nil
	case "arbiter1":
		names := spec.DefaultUsers(nUsers)
		a1 := spec.New(names)
		comps := append([]ioa.Automaton{a1}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose("arbiter1", comps...)
	case "ring":
		names := spec.DefaultUsers(nUsers)
		sys, err := ring.New(names)
		if err != nil {
			return nil, err
		}
		comps := append([]ioa.Automaton{sys.Arbiter}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose("ring-closed", comps...)
	case "mutex":
		sys, err := mutex.New()
		if err != nil {
			return nil, err
		}
		var comps []ioa.Automaton
		comps = append(comps, sys.Mutex)
		for i := 0; i < 2; i++ {
			i := i
			d := ioa.NewDef("User" + string(rune('0'+i)))
			d.Start(ioa.KeyState("rem"))
			d.Output(mutex.Try(i), "u"+string(rune('0'+i)),
				func(s ioa.State) bool { return s.Key() == "rem" },
				func(ioa.State) ioa.State { return ioa.KeyState("trying") })
			d.Input(mutex.Crit(i), func(s ioa.State) ioa.State { return ioa.KeyState("crit") })
			d.Output(mutex.Exit(i), "u"+string(rune('0'+i)),
				func(s ioa.State) bool { return s.Key() == "crit" },
				func(ioa.State) ioa.State { return ioa.KeyState("exited") })
			d.Input(mutex.Rem(i), func(s ioa.State) ioa.State { return ioa.KeyState("rem") })
			comps = append(comps, d.MustBuild())
		}
		return ioa.Compose("mutex-closed", comps...)
	case "arbiter2", "arbiter3", "arbiter3r":
		tr, err := graph.BinaryTree(nUsers)
		if err != nil {
			return nil, err
		}
		names := treeUserNames(tr)
		var arb ioa.Automaton
		if name == "arbiter2" {
			holder := tr.NodesOf(graph.Arbiter)[0]
			a2, err := graphlevel.New(tr, tr.Neighbors(holder)[0], holder)
			if err != nil {
				return nil, err
			}
			arb, err = ioa.Rename(a2, graphlevel.F1(tr))
			if err != nil {
				return nil, err
			}
		} else {
			// A zero profile gets the plain reliable channels rather
			// than a zero-rate schedule: scheduled channels carry
			// per-channel sequence counters in their state, which makes
			// the -reach state space unbounded for no behavioral gain.
			var inj faults.Injection
			if !prof.Zero() {
				sched, err := faults.NewSchedule(faultSeed, prof)
				if err != nil {
					return nil, err
				}
				inj = faults.Injection{Sched: sched}
			}
			holder := tr.NodesOf(graph.Arbiter)[0]
			aug, err := graph.Augment(tr)
			if err != nil {
				return nil, err
			}
			var base ioa.Automaton
			var f2 *ioa.Mapping
			if name == "arbiter3r" {
				sys, err := dist.NewHardened(tr, holder, inj)
				if err != nil {
					return nil, err
				}
				base = sys.A3R
				f2, err = sys.F2(aug)
				if err != nil {
					return nil, err
				}
			} else {
				sys, err := dist.NewWithFaults(tr, holder, inj)
				if err != nil {
					return nil, err
				}
				base = sys.A3
				f2, err = sys.F2(aug)
				if err != nil {
					return nil, err
				}
			}
			a3x, err := ioa.Rename(base, f2)
			if err != nil {
				return nil, err
			}
			arb, err = ioa.Rename(a3x, graphlevel.F1(aug))
			if err != nil {
				return nil, err
			}
		}
		comps := append([]ioa.Automaton{arb}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose(name, comps...)
	default:
		return nil, fmt.Errorf("unknown system %q (try fig21, fig22, fig23c, arbiter1, arbiter2, arbiter3, arbiter3r, ring, mutex)", name)
	}
}

func treeUserNames(tr *graph.Tree) []string {
	ids := tr.NodesOf(graph.User)
	out := make([]string, len(ids))
	for i, u := range ids {
		out[i] = tr.Node(u).Name
	}
	return out
}

func report(auto ioa.Automaton, x *ioa.Execution, trace bool) {
	fmt.Printf("system %s: ran %d steps\n", auto.Name(), x.Len())
	if trace {
		for i, act := range x.Acts {
			fmt.Printf("%4d  %s\n", i+1, act)
		}
	}
	if err := ioa.CheckFairWindow(x, 4*len(auto.Parts())); err != nil {
		fmt.Printf("fairness: %v\n", err)
	} else {
		fmt.Println("fairness: every class served within the window")
	}
	counts := make(map[string]int)
	for _, act := range x.Acts {
		counts[act.Base()]++
	}
	fmt.Println("action counts:")
	for _, base := range []string{"request", "grant", "return"} {
		if counts[base] > 0 {
			fmt.Printf("  %-8s %d\n", base, counts[base])
		}
	}
	perUser := make(map[string]int)
	for _, act := range x.Acts {
		if act.Base() == "grant" && len(act.Params()) == 1 {
			perUser[act.Params()[0]]++
		}
	}
	if len(perUser) > 0 {
		fmt.Println("grants per user:")
		for _, u := range sortedKeys(perUser) {
			fmt.Printf("  %-6s %d\n", u, perUser[u])
		}
	}
	if x.Len() > 0 && len(perUser) == 0 && !trace {
		fmt.Printf("last actions: %s\n", ioa.TraceString(x.Acts[max(0, len(x.Acts)-10):]))
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
