// Command ioasim simulates the systems built in this repository: the
// figure examples of Chapter 2, Schönhage's arbiter at each of its
// three levels of abstraction (closed with user automata), and the
// token-ring arbiter.
//
// Usage:
//
//	ioasim -system fig21|fig22|fig23c|arbiter1|arbiter2|arbiter3|arbiter3r|star|ring|mutex|dijkstra|lamport|grid
//	       [-steps n] [-policy rr|random] [-seed n] [-users n]
//	       [-grid-base m] [-grid-digits k]
//	       [-faults drop=0.1,dup=0.05,delay=3] [-fault-seed n]
//	       [-trace] [-json] [-dot] [-reach] [-stabilize] [-induct]
//	       [-workers n] [-limit n] [-dedup]
//	       [-spill-dir dir] [-spill-mem-mb n]
//	       [-dist-listen host:port -dist-workers n [-dist-spawn]]
//	       [-dist-join host:port [-dist-corrupt]]
//	       [-obs-addr host:port] [-trace-out file] [-metrics-out file]
//	       [-ledger-out file] [-progress] [-stall-after d]
//
// The -reach flag explores the system's reachable state space instead
// of simulating it, reporting the state count and deadlocks.
//
// External memory: -spill-dir backs the seen set with the disk-
// spilling store (delta-encoded sorted runs under the directory),
// keeping at most -spill-mem-mb MiB of interned keys resident. For
// systems with a canonical decodable encoding (grid), -reach
// -spill-dir runs the external census — frontier and seen set both on
// disk — so state spaces far beyond RAM complete under a fixed budget
// (EXPERIMENTS.md E23 walks the 10⁸-state grid this way). The grid
// system is the scale harness: a k-digit base-m counter (-grid-base,
// -grid-digits) with closed-form state count m^k, depth k·(m-1), and
// exactly one deadlock, so huge runs are checkable.
//
// Distributed exploration: -dist-listen starts a coordinator that
// shards the interned key space across -dist-workers OS processes
// (owner = hash(encoding) mod procs) with level-synchronized barriers;
// counts and verdicts are bit-identical at any process count.
// -dist-spawn makes the coordinator fork the workers from its own
// binary; otherwise start each worker by hand with -dist-join
// host:port and the same -system flags. Workers verify every received
// candidate actually belongs to their shard, so a corrupted shard
// assignment (-dist-corrupt, the CI must-fail probe) aborts the
// cluster rather than silently double-counting.
//
// The -induct flag certifies the system's safety invariant by one-step
// induction instead of exploring: every start state must satisfy the
// invariant, and every transition from an invariant state of the
// candidate domain must land back in it. The domain is streamed, so
// certification runs in O(1) resident memory over complete
// combinatorial spaces far beyond any reachability frontier — the
// lamport system (Lamport's bounded-clock mutual-exclusion algorithm,
// -users processes, clocks to 2, unit channels) certifies mutual
// exclusion over 518,400 candidate states at -users 2 against a
// reachable set of a few dozen; because the domain grows by roughly
// five orders of magnitude per extra process, lamport -induct defaults
// to that certified 2-process configuration unless -users is given
// explicitly. On failure the counterexample to
// induction (pre-state, action, post-state, first violated conjunct)
// is printed and the process exits non-zero, so CI can assert both
// directions. Supported systems: arbiter1, dijkstra, ring, mutex,
// lamport.
//
// The -stabilize flag runs the self-stabilization certifier instead of
// simulating: it checks closure (the legitimate-state set is invariant
// under all steps) and convergence (every fair execution from every
// state of a corruption envelope reaches legitimacy, with the worst
// case measured in rounds) and prints the certificate. It applies to
// the dijkstra system (Dijkstra's K-state token ring with n machines
// and modulus K both set by -users, certified from the full K^n
// corruption envelope — expected to pass)
// and to the ring system (the LeLann token ring certified from the
// crash-restart corruption envelope — expected to FAIL, exiting
// non-zero, since a lost token never regenerates). The exit status is
// the verdict, so CI can assert both directions. The
// exploration knobs (-workers, -limit, -dedup) are the shared set
// registered by explore.BindFlags — identical flags and defaults in
// arbiterbench — and resolve into the explore.Options behind one
// explore.Engine: -workers selects the sharded parallel explorer (0 =
// GOMAXPROCS, 1 = sequential), whose per-depth key-sorted order is
// identical at any worker count; -limit bounds the exploration.
//
// The -faults flag injects seeded channel faults into the distributed
// arbiter systems: arbiter3 runs the plain A₃ over the faulty channels
// (and visibly starves or deadlocks under loss), arbiter3r runs the
// retry-hardened A₃ʳ whose alternating-bit links mask loss and
// duplication. Fault decisions are a pure function of (-fault-seed,
// channel, message sequence number), so runs are reproducible. The
// fault classes are drop (loss rate), dup (duplication rate), and
// delay (reordering bound; tolerated by neither variant — the
// alternating-bit links assume FIFO channels).
//
// Observability: -trace-out writes a Chrome trace_event JSON file
// (load it at https://ui.perfetto.dev or chrome://tracing) with spans
// for exploration levels and worker expansions, instant events for
// injected faults, and counter series for the composition memo.
// -metrics-out writes a JSON snapshot of every counter and histogram
// (states admitted, memo hit/miss, per-class fire counts, fault
// counts). -obs-addr serves live expvar metrics at /debug/vars, pprof
// profiles at /debug/pprof/, a liveness probe at /debug/healthz, and —
// when a ledger is active — live progress at /debug/progress (JSON)
// and /debug/progress/html, for the duration of the run. -ledger-out
// appends a schema-versioned JSONL run ledger (see internal/ledger):
// one provenance record per run (system, seed, explicitly-set flags,
// wall time, states, per-conjunct obligation counts, verdict, artifact
// paths) plus periodic progress snapshots with derived states/sec and
// ETA. -progress echoes the same snapshots to stderr as human-readable
// lines. While a ledger is active a stall watchdog journals a
// goroutine dump and the recent journal ring whenever no progress
// lands within -stall-after (default 30s; 0 disables) — the run keeps
// going, the evidence is for the postmortem. Any of
// the flags enables instrumentation; with none set the
// observability layer is off and costs nothing.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"time"

	"repro/internal/arbiter/dist"
	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/spec"
	"repro/internal/arbiter/users"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/domain"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/induct"
	"repro/internal/ioa"
	"repro/internal/ledger"
	"repro/internal/mutex"
	"repro/internal/obs"
	"repro/internal/reduce"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/store"
	"repro/internal/testseed"
)

// config carries every flag; run is pure in (config, out), so tests
// drive the whole CLI without exec'ing the binary.
type config struct {
	system    string
	steps     int
	policy    string
	seed      int64
	nUsers    int
	trace     bool
	jsonOut   bool
	dotOut    bool
	faults    string
	faultSd   int64
	reach     bool
	stabilize bool
	induct    bool
	symmetry  bool
	por       bool
	explore   explore.Options

	gridM, gridK int

	distListen  string
	distWorkers int
	distJoin    string
	distSpawn   bool
	distCorrupt bool

	obsAddr    string
	traceOut   string
	metricsOut string
	ledgerOut  string
	progress   bool
	stallAfter time.Duration

	// usersSet records whether -users was given explicitly; without
	// it, lamport -induct downsizes to its certified 2-process domain
	// (the full 3-process candidate space is ~10^13 states).
	usersSet bool
	// flags holds the explicitly-set command-line flags, journaled as
	// run provenance; nil when run is driven directly from tests.
	flags map[string]string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ioasim: ")
	var cfg config
	flag.StringVar(&cfg.system, "system", "arbiter3", "system to simulate")
	flag.IntVar(&cfg.steps, "steps", 100, "maximum steps")
	flag.StringVar(&cfg.policy, "policy", "rr", "scheduling policy: rr or random")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the random policy")
	flag.IntVar(&cfg.nUsers, "users", 3, "number of users (arbiter systems)")
	flag.IntVar(&cfg.gridM, "grid-base", 10, "digit base m of the grid scale harness (m^k states)")
	flag.IntVar(&cfg.gridK, "grid-digits", 8, "digit count k of the grid scale harness")
	flag.BoolVar(&cfg.trace, "trace", false, "print the full step trace")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the trace as JSON events on stdout")
	flag.BoolVar(&cfg.dotOut, "dot", false, "emit the reachable state graph in Graphviz DOT format and exit")
	flag.StringVar(&cfg.faults, "faults", "none", "channel fault profile, e.g. drop=0.1,dup=0.05,delay=3 (arbiter3/arbiter3r)")
	flag.Int64Var(&cfg.faultSd, "fault-seed", 1, "seed for the deterministic fault schedule")
	flag.BoolVar(&cfg.reach, "reach", false, "explore the reachable state space instead of simulating")
	flag.BoolVar(&cfg.stabilize, "stabilize", false, "certify self-stabilization instead of simulating (dijkstra/ring); exits non-zero when not stabilizing")
	flag.BoolVar(&cfg.induct, "induct", false, "certify the safety invariant by one-step induction (arbiter1/dijkstra/ring/mutex/lamport); exits non-zero on a CTI")
	ex := explore.BindFlags(flag.CommandLine)
	flag.StringVar(&cfg.obsAddr, "obs-addr", "", "serve live expvar + pprof debug endpoints on this address (e.g. :6060)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a Chrome trace_event JSON file to this path")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write a metrics snapshot JSON file to this path")
	flag.StringVar(&cfg.ledgerOut, "ledger-out", "", "append a JSONL run ledger (provenance record + progress snapshots) to this path")
	flag.BoolVar(&cfg.progress, "progress", false, "echo live progress snapshots to stderr")
	flag.DurationVar(&cfg.stallAfter, "stall-after", 30*time.Second, "with -ledger-out/-progress: journal a stall dump when no progress lands within this window (0 disables)")
	flag.Parse()
	cfg.explore = ex.Options(nil, nil)
	cfg.symmetry = ex.Symmetry()
	cfg.por = ex.POR()
	cfg.distListen = ex.DistListen()
	cfg.distWorkers = ex.DistWorkers()
	cfg.distJoin = ex.DistJoin()
	cfg.distSpawn = ex.DistSpawn()
	cfg.distCorrupt = ex.DistCorrupt()
	cfg.flags = make(map[string]string)
	flag.Visit(func(f *flag.Flag) {
		cfg.flags[f.Name] = f.Value.String()
		if f.Name == "users" {
			cfg.usersSet = true
		}
	})
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one ioasim invocation, writing human output to out.
// Observability artifacts (-trace-out, -metrics-out) are written even
// when the run itself fails, so a trace of the failing run survives,
// and the ledger's provenance record is appended last so it names the
// artifacts and carries the final verdict; all errors, including
// partial-write errors from the artifact and ledger files, are
// combined into the returned error.
func run(cfg config, out io.Writer) error {
	prof, err := faults.ParseProfile(cfg.faults)
	if err != nil {
		return err
	}
	var o *obs.Obs
	if cfg.obsAddr != "" || cfg.traceOut != "" || cfg.metricsOut != "" || cfg.ledgerOut != "" || cfg.progress {
		o = obs.New(nil)
		o.Tracer.NameProcess("ioasim -system " + cfg.system)
	}
	var (
		led     *ledger.Ledger
		ledFile *os.File
	)
	if cfg.ledgerOut != "" || cfg.progress {
		w := io.Writer(io.Discard)
		if cfg.ledgerOut != "" {
			// O_APPEND, not truncate: the ledger is a journal, and CI
			// jobs accumulate several runs into one artifact file.
			ledFile, err = os.OpenFile(cfg.ledgerOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			w = ledFile
		}
		var lopts ledger.Options
		if cfg.progress {
			lopts.Echo = os.Stderr
		}
		led = ledger.New(w, lopts)
		o.Progress = led.OnProgress
		if cfg.stallAfter > 0 {
			wd := led.NewWatchdog(cfg.stallAfter)
			wd.Start()
			defer wd.Stop()
		}
	}
	var stopServe func() error
	if cfg.obsAddr != "" {
		o.PublishExpvar("ioasim")
		var extra []obs.Endpoint
		if led != nil {
			extra = led.Endpoints()
		}
		addr, stop, err := obs.Serve(cfg.obsAddr, extra...)
		if err != nil {
			return err
		}
		stopServe = stop
		fmt.Fprintf(out, "obs: serving http://%s/debug/vars and /debug/pprof/\n", addr)
	}

	rec := &ledger.Run{
		Tool:     "ioasim",
		Mode:     runMode(cfg),
		System:   cfg.system,
		Seed:     cfg.seed,
		Users:    cfg.nUsers,
		Workers:  cfg.explore.Workers,
		Limit:    cfg.explore.Limit,
		Symmetry: cfg.symmetry,
		POR:      cfg.por,
		Flags:    cfg.flags,
	}
	started := testseed.Now()

	if cfg.distJoin != "" {
		err = workerRun(cfg, prof, o)
	} else if cfg.distListen != "" {
		err = coordRun(cfg, o, rec, out)
	} else if cfg.stabilize {
		err = certifyRun(cfg, prof, o, rec, out)
	} else if cfg.induct {
		err = inductRun(cfg, prof, o, rec, out)
	} else {
		var auto ioa.Automaton
		auto, err = buildSystem(cfg, prof, o)
		if err == nil {
			if o != nil {
				ioa.SetObsDeep(auto, o)
			}
			auto, err = applyReduction(&cfg, auto)
		}
		if err == nil {
			err = dispatch(cfg, auto, o, rec, out)
		}
	}

	if cfg.traceOut != "" {
		err = errors.Join(err, writeFile(cfg.traceOut, o.Tracer.WriteJSON))
		rec.Artifacts = append(rec.Artifacts, cfg.traceOut)
	}
	if cfg.metricsOut != "" {
		err = errors.Join(err, writeFile(cfg.metricsOut, o.Reg.WriteJSON))
		rec.Artifacts = append(rec.Artifacts, cfg.metricsOut)
	}
	if led != nil {
		rec.WallNS = testseed.Now().Sub(started).Nanoseconds()
		rec.Verdict = "ok"
		if err != nil {
			rec.Verdict = "fail"
			if rec.Detail == "" {
				rec.Detail = err.Error()
			}
		}
		err = errors.Join(err, led.Record(*rec))
	}
	if ledFile != nil {
		err = errors.Join(err, ledFile.Close())
	}
	if stopServe != nil {
		err = errors.Join(err, stopServe())
	}
	return err
}

// runMode names the entry point for the ledger's provenance record.
func runMode(cfg config) string {
	switch {
	case cfg.distJoin != "":
		return "dist-worker"
	case cfg.distListen != "":
		return "dist-coordinate"
	case cfg.stabilize:
		return "stabilize"
	case cfg.induct:
		return "induct"
	case cfg.dotOut:
		return "dot"
	case cfg.reach:
		return "reach"
	default:
		return "simulate"
	}
}

// systemCanonicalizer resolves -symmetry for a system: the
// canonicalizer of its automorphism group, or an error for systems
// with none registered.
func systemCanonicalizer(system string, nUsers int) (store.Canonicalizer, error) {
	switch system {
	case "arbiter1":
		return reduce.NewArbiterUsers(nUsers)
	case "star":
		return reduce.NewStarRotation(nUsers)
	case "ring":
		return reduce.NewRingRotation(nUsers)
	case "dijkstra":
		return reduce.NewDijkstraShift(nUsers)
	default:
		return nil, fmt.Errorf("-symmetry: no canonicalizer registered for system %q (try arbiter1, star, ring, dijkstra)", system)
	}
}

// systemPOROptions resolves -por for a system: the arbiter systems get
// the semantic per-leaf rules and the mutual-exclusion visibility
// predicate; everything else falls back to the conservative structural
// analysis (sound for any closed system, rarely reducing).
func systemPOROptions(system string, nUsers int) (reduce.Options, error) {
	var tr *graph.Tree
	var err error
	switch system {
	case "arbiter2", "arbiter3", "arbiter3r":
		tr, err = graph.BinaryTree(nUsers)
	case "star":
		tr, err = graph.Star(nUsers)
	default:
		return reduce.Options{}, nil
	}
	if err != nil {
		return reduce.Options{}, err
	}
	return reduce.Options{Rules: reduce.ArbiterRules(tr), Visible: reduce.HolderVisibility}, nil
}

// applyReduction resolves -symmetry and -por into the exploration
// options. Both apply to -reach only: simulation follows one concrete
// schedule, so there is nothing to quotient or prune. A system with
// residual environment inputs (mutex's unpaired register invocations)
// is wrapped in explore.ClosedWorld first — POR is only defined for
// closed systems, and the wrapper's name suffix makes the changed
// baseline visible in the -reach report. The returned automaton is
// the one to explore.
func applyReduction(cfg *config, auto ioa.Automaton) (ioa.Automaton, error) {
	if !cfg.symmetry && !cfg.por {
		return auto, nil
	}
	if !cfg.reach {
		return nil, errors.New("-symmetry/-por apply to -reach (use -stabilize -symmetry for the certifier)")
	}
	if cfg.symmetry {
		c, err := systemCanonicalizer(cfg.system, cfg.nUsers)
		if err != nil {
			return nil, err
		}
		cfg.explore.Canon = c
	}
	if cfg.por {
		if auto.Sig().Inputs().Len() > 0 {
			auto = explore.ClosedWorld(auto)
		}
		opts, err := systemPOROptions(cfg.system, cfg.nUsers)
		if err != nil {
			return nil, err
		}
		p, err := reduce.NewPOR(auto, opts)
		if err != nil {
			return nil, err
		}
		cfg.explore.Ample = p
	}
	return auto, nil
}

// certifyRun certifies self-stabilization of the selected system and
// prints the certificate. The dijkstra system is certified from its
// full K^n corruption envelope; the ring system (LeLann) from the
// crash-restart envelope — the reachable states of the ring with every
// process wrapped in faults.CrashRestart, projected back into the
// clean composition. A non-stabilizing verdict is an error, so the
// process exits non-zero.
func certifyRun(cfg config, prof faults.Profile, o *obs.Obs, rec *ledger.Run, out io.Writer) error {
	if !prof.Zero() {
		return errors.New("-stabilize certifies state corruption envelopes; channel -faults do not apply")
	}
	if cfg.por {
		return errors.New("-por does not apply to -stabilize: convergence bounds need the full transition graph")
	}
	opts := stabilize.Options{Workers: cfg.explore.Workers, Limit: cfg.explore.Limit, Obs: o}
	if cfg.symmetry {
		if cfg.system != "dijkstra" {
			return errors.New("-stabilize -symmetry is supported for the dijkstra system only")
		}
		c, err := reduce.NewDijkstraShift(cfg.nUsers)
		if err != nil {
			return err
		}
		opts.Canon = c
	}
	var (
		auto  ioa.Automaton
		legit func(ioa.State) bool
		env   stabilize.Envelope
	)
	switch cfg.system {
	case "dijkstra":
		r, err := ring.NewDijkstra(cfg.nUsers, cfg.nUsers)
		if err != nil {
			return err
		}
		auto, legit = r.Auto, r.Legit
		env = r.StateDomain()
	case "ring":
		sys, err := ring.New(spec.DefaultUsers(cfg.nUsers))
		if err != nil {
			return err
		}
		comps := make([]ioa.Automaton, len(sys.Procs))
		for i, p := range sys.Procs {
			comps[i], err = faults.CrashRestart(p, "p"+fmt.Sprint(i), faults.Reset)
			if err != nil {
				return err
			}
		}
		crashed, err := ioa.Compose("ring-crash", comps...)
		if err != nil {
			return err
		}
		auto = sys.Composite
		legit = func(s ioa.State) bool { return sys.TokenCount(s) == 1 }
		env = domain.Reachable("crash(reset)", crashed, domain.TupleMap(domain.CrashInner),
			explore.Options{Workers: opts.Workers, Limit: opts.Limit})
	default:
		return fmt.Errorf("-stabilize applies to dijkstra and ring, not %q", cfg.system)
	}
	if o != nil {
		ioa.SetObsDeep(auto, o)
	}
	cert, err := stabilize.Certify(context.Background(), auto, legit, env, opts)
	if err != nil {
		return err
	}
	rec.Domain = cert.Envelope
	rec.States = int64(cert.States)
	fmt.Fprintln(out, cert)
	if !cert.Stabilizing() {
		return fmt.Errorf("%s is not self-stabilizing under envelope %q", cert.Automaton, cert.Envelope)
	}
	return nil
}

// inductRun certifies the selected system's safety invariant by
// one-step induction over its candidate domain and prints the
// certificate. A counterexample to induction is an error, so the
// process exits non-zero — the negative direction CI asserts with a
// deliberately weakened conjunction lives in the bench battery.
func inductRun(cfg config, prof faults.Profile, o *obs.Obs, rec *ledger.Run, out io.Writer) error {
	if !prof.Zero() {
		return errors.New("-induct certifies the fault-free systems; channel -faults do not apply")
	}
	if cfg.symmetry || cfg.por {
		return errors.New("-symmetry/-por apply to -reach: induction walks the candidate domain, not the transition graph")
	}
	var (
		sys bench.InductSystem
		err error
	)
	switch cfg.system {
	case "arbiter1":
		sys, err = bench.InductArbiter1(cfg.nUsers)
	case "dijkstra":
		sys, err = bench.InductDijkstra(cfg.nUsers, cfg.nUsers)
	case "ring":
		sys, err = bench.InductRing(cfg.nUsers)
	case "mutex":
		sys, err = bench.InductBurns(explore.Options{Workers: cfg.explore.Workers, Limit: cfg.explore.Limit})
	case "lamport":
		n := cfg.nUsers
		if !cfg.usersSet {
			// The candidate domain grows ~10^5-fold per extra process
			// (the 3-process space is ~10^13 states); walk the
			// certified 2-process domain unless -users was explicit.
			n = 2
		}
		rec.Users = n
		sys, err = bench.InductLamport(n, 2, 1)
	default:
		return fmt.Errorf("-induct applies to arbiter1, dijkstra, ring, mutex, and lamport, not %q", cfg.system)
	}
	if err != nil {
		return err
	}
	if o != nil {
		ioa.SetObsDeep(sys.Auto, o)
	}
	cert, err := induct.Check(context.Background(), sys.Auto, sys.Dom, sys.Inv, induct.Options{Obs: o})
	if err != nil {
		return err
	}
	rec.Domain = cert.Domain
	rec.States = cert.DomainStates
	rec.Obligations = make([]ledger.Obligation, len(cert.Obligations))
	for i, ob := range cert.Obligations {
		rec.Obligations[i] = ledger.Obligation{Conjunct: ob.Conjunct, Discharged: ob.Discharged}
	}
	fmt.Fprintln(out, cert)
	if cert.CTI != nil {
		fmt.Fprintln(out, cert.CTI)
		rec.Detail = cert.CTI.String()
		return fmt.Errorf("%s is not inductive for %s over domain %q", cert.Invariant, cert.Automaton, cert.Domain)
	}
	return nil
}

// dispatch runs the selected mode: DOT export, reachability, or
// simulation.
func dispatch(cfg config, auto ioa.Automaton, o *obs.Obs, rec *ledger.Run, out io.Writer) error {
	ctx := context.Background()
	if cfg.dotOut {
		eng := explore.New(explore.Options{Workers: 1, Limit: 4096, Obs: o})
		return eng.WriteDOT(ctx, out, auto)
	}
	if cfg.reach {
		opts := cfg.explore
		opts.Obs = o
		if opts.Spill != nil {
			if dec, ok := auto.(interface {
				Decode([]byte) (ioa.State, error)
			}); ok {
				// Canonically decodable system: run the external census
				// — frontier and seen set both on disk, O(spill budget)
				// resident memory regardless of state count.
				opts.Decode = dec.Decode
				sum, cerr := explore.New(opts).Census(ctx, auto, nil, nil)
				if cerr != nil {
					if errors.Is(cerr, explore.ErrLimit) {
						fmt.Fprintf(out, "%s: truncated at state budget %d (pass a larger -limit)\n", auto.Name(), opts.Limit)
						return nil
					}
					return cerr
				}
				rec.States = sum.States
				fmt.Fprintf(out, "%s: %d reachable states (external census, depth %d)\n", auto.Name(), sum.States, sum.Depth)
				if sum.Deadlocks == 0 {
					fmt.Fprintln(out, "no quiescent states")
				} else {
					fmt.Fprintf(out, "%d quiescent states (nothing locally controlled enabled)\n", sum.Deadlocks)
				}
				return nil
			}
		}
		eng := explore.New(opts)
		states, err := eng.Reach(ctx, auto)
		truncated := false
		if err != nil {
			if !errors.Is(err, explore.ErrLimit) {
				return err
			}
			truncated = true
		}
		rec.States = int64(len(states))
		fmt.Fprintf(out, "%s: %d reachable states", auto.Name(), len(states))
		if truncated {
			fmt.Fprintf(out, " (truncated at state budget; pass a larger -limit)\n")
			return nil
		}
		fmt.Fprintln(out)
		dead, err := eng.Deadlocks(ctx, auto)
		if err != nil {
			return err
		}
		if len(dead) == 0 {
			fmt.Fprintln(out, "no quiescent states")
		} else {
			fmt.Fprintf(out, "%d quiescent states (nothing locally controlled enabled); first: %s\n",
				len(dead), dead[0].Key())
		}
		return nil
	}
	var p sim.Policy
	switch cfg.policy {
	case "rr":
		p = &sim.RoundRobin{}
	case "random":
		p = sim.NewRandom(cfg.seed)
	default:
		return fmt.Errorf("unknown policy %q", cfg.policy)
	}
	x, err := sim.RunObs(auto, p, cfg.steps, nil, o)
	if err != nil {
		return err
	}
	rec.States = int64(x.Len())
	if cfg.jsonOut {
		return writeJSON(out, x)
	}
	report(out, auto, x, cfg.trace)
	return nil
}

// workerRun joins a coordinator at -dist-join as one worker process of
// a sharded exploration. The worker builds the system locally — the
// cluster protocol ships canonical encodings, never concrete states —
// and owns the shard of the interned key space the coordinator's rank
// assignment gives it. A -spill-dir is made rank-unique with a private
// subdirectory, so several workers on one host never collide.
func workerRun(cfg config, prof faults.Profile, o *obs.Obs) error {
	spill := cfg.explore.Spill
	if spill != nil {
		if err := os.MkdirAll(spill.Dir, 0o755); err != nil {
			return err
		}
		dir, err := os.MkdirTemp(spill.Dir, "shard-")
		if err != nil {
			return err
		}
		sp := *spill
		sp.Dir = dir
		spill = &sp
	}
	var canon store.Canonicalizer
	if cfg.symmetry {
		c, err := systemCanonicalizer(cfg.system, cfg.nUsers)
		if err != nil {
			return err
		}
		canon = c
	}
	wcfg := cluster.Config{
		Addr:         cfg.distJoin,
		Build:        func() (ioa.Automaton, error) { return buildSystem(cfg, prof, o) },
		Limit:        int64(cfg.explore.Limit),
		Spill:        spill,
		Canon:        canon,
		CorruptShard: cfg.distCorrupt,
	}
	// cluster.Work retries refused dials itself (hand-started workers
	// race the coordinator's bind), so the exploration runs exactly once.
	return cluster.Work(context.Background(), wcfg)
}

// joinAddr renders a bound listener address as a dialable -dist-join
// target: an unspecified host (":0", "0.0.0.0", "::") becomes
// loopback, since that is where locally spawned workers must dial.
func joinAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// coordRun coordinates a sharded multi-process exploration: it listens
// on -dist-listen, waits for -dist-workers worker processes, drives the
// level barriers, and reports the cluster-wide census. With -dist-spawn
// the workers are forked from this binary with the system flags passed
// through; otherwise start them by hand with -dist-join.
func coordRun(cfg config, o *obs.Obs, rec *ledger.Run, out io.Writer) error {
	if !cfg.reach {
		return errors.New("-dist-listen requires -reach")
	}
	if cfg.por {
		return errors.New("-por does not apply to -dist-listen: ample sets need a global transition view")
	}
	// Bind before spawning so workers can join an ephemeral port
	// (-dist-listen :0): the join address comes from the bound
	// listener, not the flag.
	ln, err := net.Listen("tcp", cfg.distListen)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", cfg.distListen, err)
	}
	join := joinAddr(ln.Addr())
	fmt.Fprintf(out, "coordinating on %s (%d workers)\n", join, cfg.distWorkers)
	var spawned []*exec.Cmd
	if cfg.distSpawn {
		args := []string{
			"-system", cfg.system,
			"-users", fmt.Sprint(cfg.nUsers),
			"-dist-join", join,
		}
		if cfg.system == "grid" {
			args = append(args, "-grid-base", fmt.Sprint(cfg.gridM), "-grid-digits", fmt.Sprint(cfg.gridK))
		}
		if cfg.explore.Limit != explore.DefaultLimit {
			args = append(args, "-limit", fmt.Sprint(cfg.explore.Limit))
		}
		if cfg.explore.Spill != nil {
			args = append(args,
				"-spill-dir", cfg.explore.Spill.Dir,
				"-spill-mem-mb", fmt.Sprint(cfg.explore.Spill.MemBudget>>20))
		}
		if cfg.symmetry {
			args = append(args, "-symmetry")
		}
		if cfg.faults != "" && cfg.faults != "none" {
			args = append(args, "-faults", cfg.faults, "-fault-seed", fmt.Sprint(cfg.faultSd))
		}
		for i := 0; i < cfg.distWorkers; i++ {
			cmd := exec.Command(os.Args[0], args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("spawn worker %d: %w", i, err)
			}
			spawned = append(spawned, cmd)
		}
	}
	res, err := cluster.Coordinate(context.Background(), cluster.Config{
		Listener: ln,
		Procs:    cfg.distWorkers,
		Limit:    int64(cfg.explore.Limit),
		Obs:      o,
	})
	for i, cmd := range spawned {
		if werr := cmd.Wait(); werr != nil {
			err = errors.Join(err, fmt.Errorf("worker %d: %w", i, werr))
		}
	}
	if err != nil {
		return err
	}
	rec.States = res.States
	rec.Detail = res.Verdict()
	fmt.Fprintf(out, "%s: %d reachable states across %d processes (depth %d, verdict %s)\n",
		cfg.system, res.States, res.Procs, res.Depth, res.Verdict())
	fmt.Fprint(out, "shard balance:")
	for _, n := range res.PerRank {
		fmt.Fprintf(out, " %d", n)
	}
	fmt.Fprintln(out)
	return nil
}

// writeFile writes one observability artifact through a buffered
// writer. Flush and close always run, and their errors are combined
// with the emit error, so a partial write (full disk, closed pipe) is
// reported instead of leaving a silently truncated artifact.
func writeFile(path string, emit func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	err = emit(bw)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// event is one step of a trace in the JSON export format.
type event struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
	State  string `json:"state"`
}

// writeJSON emits the execution as a JSON array of events, preceded by
// the initial state, for consumption by external tooling.
func writeJSON(w io.Writer, x *ioa.Execution) error {
	events := make([]event, 0, x.Len()+1)
	events = append(events, event{Step: 0, Action: "", State: x.States[0].Key()})
	for i, act := range x.Acts {
		events = append(events, event{Step: i + 1, Action: string(act), State: x.States[i+1].Key()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

func buildSystem(cfg config, prof faults.Profile, o *obs.Obs) (ioa.Automaton, error) {
	name, nUsers, faultSeed := cfg.system, cfg.nUsers, cfg.faultSd
	switch name {
	case "arbiter3", "arbiter3r":
		// Handled below; every other system rejects fault injection.
	default:
		if !prof.Zero() {
			return nil, fmt.Errorf("-faults applies to arbiter3 and arbiter3r only, not %q", name)
		}
	}
	switch name {
	case "grid":
		m, k := cfg.gridM, cfg.gridK
		if m == 0 {
			m = 10
		}
		if k == 0 {
			k = 8
		}
		return grid.New(m, k)
	case "fig21":
		return figures.Fig21(), nil
	case "fig22":
		return figures.Fig22(), nil
	case "fig23c":
		return figures.Fig23C(), nil
	case "arbiter1":
		names := spec.DefaultUsers(nUsers)
		a1 := spec.New(names)
		comps := append([]ioa.Automaton{a1}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose("arbiter1", comps...)
	case "ring":
		names := spec.DefaultUsers(nUsers)
		sys, err := ring.New(names)
		if err != nil {
			return nil, err
		}
		comps := append([]ioa.Automaton{sys.Arbiter}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose("ring-closed", comps...)
	case "dijkstra":
		r, err := ring.NewDijkstra(nUsers, nUsers)
		if err != nil {
			return nil, err
		}
		return r.Auto, nil
	case "lamport":
		l, err := mutex.NewLamport(nUsers, 2, 1)
		if err != nil {
			return nil, err
		}
		return l.Auto, nil
	case "mutex":
		sys, err := mutex.New()
		if err != nil {
			return nil, err
		}
		var comps []ioa.Automaton
		comps = append(comps, sys.Mutex)
		for i := 0; i < 2; i++ {
			i := i
			d := ioa.NewDef("User" + string(rune('0'+i)))
			d.Start(ioa.KeyState("rem"))
			d.Output(mutex.Try(i), "u"+string(rune('0'+i)),
				func(s ioa.State) bool { return s.Key() == "rem" },
				func(ioa.State) ioa.State { return ioa.KeyState("trying") })
			d.Input(mutex.Crit(i), func(s ioa.State) ioa.State { return ioa.KeyState("crit") })
			d.Output(mutex.Exit(i), "u"+string(rune('0'+i)),
				func(s ioa.State) bool { return s.Key() == "crit" },
				func(ioa.State) ioa.State { return ioa.KeyState("exited") })
			d.Input(mutex.Rem(i), func(s ioa.State) ioa.State { return ioa.KeyState("rem") })
			comps = append(comps, d.MustBuild())
		}
		return ioa.Compose("mutex-closed", comps...)
	case "arbiter2", "arbiter3", "arbiter3r", "star":
		// star is the level-3 distributed arbiter over graph.Star:
		// all users on one process's neighbor circle, the maximally
		// symmetric level-3 topology (see reduce.StarRotation).
		var tr *graph.Tree
		var err error
		if name == "star" {
			tr, err = graph.Star(nUsers)
		} else {
			tr, err = graph.BinaryTree(nUsers)
		}
		if err != nil {
			return nil, err
		}
		names := treeUserNames(tr)
		var arb ioa.Automaton
		if name == "arbiter2" {
			holder := tr.NodesOf(graph.Arbiter)[0]
			a2, err := graphlevel.New(tr, tr.Neighbors(holder)[0], holder)
			if err != nil {
				return nil, err
			}
			arb, err = ioa.Rename(a2, graphlevel.F1(tr))
			if err != nil {
				return nil, err
			}
		} else {
			// A zero profile gets the plain reliable channels rather
			// than a zero-rate schedule: scheduled channels carry
			// per-channel sequence counters in their state, which makes
			// the -reach state space unbounded for no behavioral gain.
			var inj faults.Injection
			if !prof.Zero() {
				sched, err := faults.NewSchedule(faultSeed, prof)
				if err != nil {
					return nil, err
				}
				sched.Obs = o
				inj = faults.Injection{Sched: sched, Obs: o}
			}
			holder := tr.NodesOf(graph.Arbiter)[0]
			aug, err := graph.Augment(tr)
			if err != nil {
				return nil, err
			}
			var base ioa.Automaton
			var f2 *ioa.Mapping
			if name == "arbiter3r" {
				sys, err := dist.NewHardened(tr, holder, inj)
				if err != nil {
					return nil, err
				}
				base = sys.A3R
				f2, err = sys.F2(aug)
				if err != nil {
					return nil, err
				}
			} else {
				sys, err := dist.NewWithFaults(tr, holder, inj)
				if err != nil {
					return nil, err
				}
				base = sys.A3
				f2, err = sys.F2(aug)
				if err != nil {
					return nil, err
				}
			}
			a3x, err := ioa.Rename(base, f2)
			if err != nil {
				return nil, err
			}
			arb, err = ioa.Rename(a3x, graphlevel.F1(aug))
			if err != nil {
				return nil, err
			}
		}
		comps := append([]ioa.Automaton{arb}, users.Automata(users.HeavyLoad(names))...)
		return ioa.Compose(name, comps...)
	default:
		return nil, fmt.Errorf("unknown system %q (try fig21, fig22, fig23c, arbiter1, arbiter2, arbiter3, arbiter3r, star, ring, mutex, dijkstra, lamport, grid)", name)
	}
}

func treeUserNames(tr *graph.Tree) []string {
	ids := tr.NodesOf(graph.User)
	out := make([]string, len(ids))
	for i, u := range ids {
		out[i] = tr.Node(u).Name
	}
	return out
}

func report(out io.Writer, auto ioa.Automaton, x *ioa.Execution, trace bool) {
	fmt.Fprintf(out, "system %s: ran %d steps\n", auto.Name(), x.Len())
	if trace {
		for i, act := range x.Acts {
			fmt.Fprintf(out, "%4d  %s\n", i+1, act)
		}
	}
	if err := ioa.CheckFairWindow(x, 4*len(auto.Parts())); err != nil {
		fmt.Fprintf(out, "fairness: %v\n", err)
	} else {
		fmt.Fprintln(out, "fairness: every class served within the window")
	}
	counts := make(map[string]int)
	for _, act := range x.Acts {
		counts[act.Base()]++
	}
	fmt.Fprintln(out, "action counts:")
	for _, base := range []string{"request", "grant", "return"} {
		if counts[base] > 0 {
			fmt.Fprintf(out, "  %-8s %d\n", base, counts[base])
		}
	}
	perUser := make(map[string]int)
	for _, act := range x.Acts {
		if act.Base() == "grant" && len(act.Params()) == 1 {
			perUser[act.Params()[0]]++
		}
	}
	if len(perUser) > 0 {
		fmt.Fprintln(out, "grants per user:")
		for _, u := range sortedKeys(perUser) {
			fmt.Fprintf(out, "  %-6s %d\n", u, perUser[u])
		}
	}
	if x.Len() > 0 && len(perUser) == 0 && !trace {
		fmt.Fprintf(out, "last actions: %s\n", ioa.TraceString(x.Acts[max(0, len(x.Acts)-10):]))
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
