package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/ledger"
	"repro/internal/obs"
)

// TestTraceOutRoundTrip is the observability acceptance check: a
// level-3 arbiter run with -trace-out must produce a structurally
// valid Chrome trace_event JSON document — unmarshalable into
// obs.TraceFile, with complete spans carrying durations, instant fault
// events, and memo counter series.
func TestTraceOutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cfg := config{
		system: "arbiter3", nUsers: 3, reach: true,
		explore: explore.Options{Workers: 2, Limit: 20000},
		faults:  "drop=0.2", faultSd: 1, steps: 100, policy: "rr",
		traceOut: tracePath, metricsOut: metricsPath,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "reachable states") {
		t.Fatalf("unexpected run output: %s", out.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace artifact does not round-trip: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var spans, instants, counters, meta int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", e)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Errorf("span %q has negative duration %v", e.Name, e.Dur)
			}
		case "i":
			instants++
			if e.S != "t" {
				t.Errorf("instant %q scope = %q, want t", e.Name, e.S)
			}
		case "C":
			counters++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q on event %q", e.Ph, e.Name)
		}
	}
	if spans == 0 || instants == 0 || counters == 0 || meta == 0 {
		t.Fatalf("trace missing event kinds: %d spans, %d instants (faults), %d counters, %d metadata",
			spans, instants, counters, meta)
	}

	// The metrics artifact must round-trip too, with the drop counter
	// matching the number of drop instants in the trace (arbiter3 with
	// drop=0.2 at this seed injects at least one).
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics artifact does not round-trip: %v", err)
	}
	if snap.Counters["faults.drop"] == 0 {
		t.Error("faults.drop = 0, want > 0 (drop=0.2 at fault-seed 1)")
	}
	var dropInstants int64
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" && e.Name == "drop" {
			dropInstants++
		}
	}
	if dropInstants != snap.Counters["faults.drop"] {
		t.Errorf("drop instants (%d) != faults.drop counter (%d)", dropInstants, snap.Counters["faults.drop"])
	}
	if snap.Counters["explore.states_admitted"] == 0 {
		t.Error("explore.states_admitted = 0")
	}
}

// TestRunWithoutObsFlags checks the uninstrumented path still works
// and writes no artifacts.
func TestRunWithoutObsFlags(t *testing.T) {
	var out bytes.Buffer
	cfg := config{system: "arbiter1", nUsers: 2, steps: 40, policy: "rr", faults: "none"}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "ran 40 steps") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestRunSimWithObs drives the simulator path with tracing on and
// checks the per-class fairness counters land in the snapshot.
func TestRunSimWithObs(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	cfg := config{
		system: "arbiter3", nUsers: 3, steps: 60, policy: "rr", faults: "none",
		metricsOut: metricsPath,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sim.steps"] != 60 {
		t.Errorf("sim.steps = %d, want 60", snap.Counters["sim.steps"])
	}
	if snap.Counters["sim.runs"] != 1 {
		t.Errorf("sim.runs = %d, want 1", snap.Counters["sim.runs"])
	}
	classFires := 0
	var total int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sim.class_fires.") {
			classFires++
			total += v
		}
	}
	if classFires == 0 {
		t.Error("no per-class fire counters recorded")
	}
	if total != snap.Counters["sim.steps"] {
		t.Errorf("class fires sum to %d, want sim.steps = %d", total, snap.Counters["sim.steps"])
	}
}

// TestRunLedger is the run-ledger acceptance check: two runs append
// into one journal — an induction certification (provenance record
// with per-conjunct obligation counts) and a parallel reachability
// walk (progress snapshots) — and Parse round-trips the whole file.
func TestRunLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	var out bytes.Buffer
	cfg := config{
		system: "dijkstra", nUsers: 3, induct: true,
		faults: "none", policy: "rr", ledgerOut: path,
		flags: map[string]string{"system": "dijkstra", "induct": "true"},
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("induct run: %v", err)
	}
	cfg2 := config{
		system: "arbiter1", nUsers: 3, reach: true,
		explore: explore.Options{Workers: 2},
		faults:  "none", policy: "rr", ledgerOut: path,
	}
	if err := run(cfg2, &out); err != nil {
		t.Fatalf("reach run: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := ledger.Parse(f)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var runs []ledger.Run
	snapshots := 0
	for _, e := range entries {
		switch e.Kind {
		case ledger.KindRun:
			runs = append(runs, *e.Run)
		case ledger.KindSnapshot:
			snapshots++
		}
	}
	if len(runs) != 2 {
		t.Fatalf("journal holds %d run records, want 2 (appended, not truncated)", len(runs))
	}
	if snapshots < 2 {
		t.Fatalf("journal holds %d progress snapshots, want >= 2", snapshots)
	}

	ind := runs[0]
	if ind.Tool != "ioasim" || ind.Mode != "induct" || ind.System != "dijkstra" || ind.Verdict != "ok" {
		t.Fatalf("induct provenance = %+v", ind)
	}
	if ind.States <= 0 || ind.Domain == "" || ind.WallNS < 0 {
		t.Fatalf("induct provenance missing size/domain: %+v", ind)
	}
	if len(ind.Obligations) == 0 {
		t.Fatalf("induct run journaled no per-conjunct obligations: %+v", ind)
	}
	for _, ob := range ind.Obligations {
		if ob.Conjunct == "" || ob.Discharged <= 0 {
			t.Fatalf("empty obligation row: %+v", ind.Obligations)
		}
	}
	if ind.Flags["induct"] != "true" {
		t.Fatalf("explicit flags not journaled: %+v", ind.Flags)
	}

	re := runs[1]
	if re.Mode != "reach" || re.System != "arbiter1" || re.Verdict != "ok" || re.States <= 0 {
		t.Fatalf("reach provenance = %+v", re)
	}
}

// TestRunLedgerFailVerdict: a failing certification still journals its
// record, with verdict fail and the CTI evidence in Detail.
func TestRunLedgerFailVerdict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	var out bytes.Buffer
	// The LeLann ring is not self-stabilizing under crash-restart: the
	// certifier exits non-zero by design.
	cfg := config{
		system: "ring", nUsers: 2, stabilize: true,
		faults: "none", policy: "rr", ledgerOut: path,
	}
	err := run(cfg, &out)
	if err == nil {
		t.Fatal("ring stabilization unexpectedly certified")
	}
	f, ferr := os.Open(path)
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer f.Close()
	entries, perr := ledger.Parse(f)
	if perr != nil {
		t.Fatalf("Parse: %v", perr)
	}
	var rec *ledger.Run
	for _, e := range entries {
		if e.Kind == ledger.KindRun {
			rec = e.Run
		}
	}
	if rec == nil {
		t.Fatal("failing run journaled no provenance record")
	}
	if rec.Verdict != "fail" || rec.Detail == "" {
		t.Fatalf("failing run journaled %+v, want verdict=fail with detail", rec)
	}
	if rec.Mode != "stabilize" || rec.States <= 0 {
		t.Fatalf("stabilize provenance = %+v", rec)
	}
}

// TestWriteFileReportsErrors checks the artifact writer surfaces
// partial-write errors instead of swallowing them (satellite: flush
// and close on error paths).
func TestWriteFileReportsErrors(t *testing.T) {
	if err := writeFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"),
		func(w io.Writer) error { return nil }); err == nil {
		t.Error("want error for uncreatable path")
	}
	boom := errors.New("boom")
	path := filepath.Join(t.TempDir(), "x.json")
	err := writeFile(path, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("emit error not propagated: %v", err)
	}
}

// TestJoinAddr pins the -dist-spawn join-address derivation: workers
// must be handed a dialable loopback address whenever the coordinator
// listens on an unspecified host or an ephemeral port, and the real
// bound port always wins over the flag's ":0".
func TestJoinAddr(t *testing.T) {
	for _, listen := range []string{":0", "127.0.0.1:0", "0.0.0.0:0"} {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			t.Fatalf("listen %s: %v", listen, err)
		}
		got := joinAddr(ln.Addr())
		_, port, err := net.SplitHostPort(got)
		if err != nil {
			t.Fatalf("listen %s: joinAddr %q not host:port: %v", listen, got, err)
		}
		if port == "0" {
			t.Errorf("listen %s: joinAddr %q kept the ephemeral port 0", listen, got)
		}
		c, err := net.Dial("tcp", got)
		if err != nil {
			t.Errorf("listen %s: joinAddr %q is not dialable: %v", listen, got, err)
		} else {
			c.Close()
		}
		ln.Close()
	}
}
