package repro

// Benchmark harness: one benchmark per table/figure/claim of the paper
// (see the per-experiment index in DESIGN.md). Each benchmark reports
// the measured quantity and the paper's bound as custom metrics, in
// units of the step bound b, so `go test -bench=. -benchmem` prints the
// same series §3.4 reports.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/arbiter/dist"
	"repro/internal/arbiter/graphlevel"
	"repro/internal/arbiter/mapping"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/figures"
	"repro/internal/graph"
	"repro/internal/ioa"
	"repro/internal/proof"
	"repro/internal/sim"
)

var benchSizes = []int{2, 4, 8, 16, 32, 64}

// BenchmarkTheorem50LightLoad regenerates the Theorem 50 series:
// light-load response time vs tree size, against the 2bd bound.
func BenchmarkTheorem50LightLoad(b *testing.B) {
	for _, kind := range []struct {
		name  string
		build func(int) (*graph.Tree, error)
	}{
		{name: "binary", build: graph.BinaryTree},
		{name: "line", build: func(n int) (*graph.Tree, error) { return graph.Line(n) }},
	} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", kind.name, n), func(b *testing.B) {
				tr, err := kind.build(n)
				if err != nil {
					b.Fatal(err)
				}
				uid := tr.NodesOf(graph.User)[0]
				cfg := bench.Config{
					Tree:   tr,
					Holder: bench.FarthestHolderFrom(tr, uid),
					Load:   bench.Light,
					B:      1,
					Grants: 3,
					Seed:   1,
				}
				var res *bench.Result
				for i := 0; i < b.N; i++ {
					res, err = bench.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				bound := 2 * float64(tr.Diameter())
				if res.Stats.Max > bound {
					b.Fatalf("max response %.1f exceeds 2bd = %.1f", res.Stats.Max, bound)
				}
				b.ReportMetric(res.Stats.Max, "resp_b")
				b.ReportMetric(bound, "bound_b")
			})
		}
	}
}

// BenchmarkTheorem52HeavyLoad regenerates the Theorem 52 series:
// heavy-load worst response vs edge count, against the 3be−b bound.
func BenchmarkTheorem52HeavyLoad(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr, err := graph.BinaryTree(n)
			if err != nil {
				b.Fatal(err)
			}
			cfg := bench.Config{
				Tree:   tr,
				Holder: tr.NodesOf(graph.Arbiter)[0],
				Load:   bench.Heavy,
				B:      1,
				Grants: 6 * n,
				Seed:   1,
			}
			var res *bench.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			bound := 3*float64(tr.EdgeCount()) - 1
			if res.Stats.Max > bound {
				b.Fatalf("max response %.1f exceeds 3be−b = %.1f", res.Stats.Max, bound)
			}
			b.ReportMetric(res.Stats.Max, "resp_b")
			b.ReportMetric(bound, "bound_b")
			b.ReportMetric(float64(res.EdgeMsgs)/float64(res.Stats.Grants), "msgs/grant")
		})
	}
}

// BenchmarkCombinedMessages regenerates the §3.4 closing-remark
// ablation: the combined grant+request variant against its 2be bound,
// with the messages-per-grant metric exposing the 3:2 traffic ratio.
func BenchmarkCombinedMessages(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr, err := graph.BinaryTree(n)
			if err != nil {
				b.Fatal(err)
			}
			cfg := bench.Config{
				Tree:    tr,
				Holder:  tr.NodesOf(graph.Arbiter)[0],
				Load:    bench.Heavy,
				B:       1,
				Grants:  6 * n,
				Combine: true,
				Seed:    1,
			}
			var res *bench.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			bound := 2 * float64(tr.EdgeCount())
			if res.Stats.Max > bound {
				b.Fatalf("max response %.1f exceeds 2be = %.1f", res.Stats.Max, bound)
			}
			b.ReportMetric(res.Stats.Max, "resp_b")
			b.ReportMetric(bound, "bound_b")
			b.ReportMetric(float64(res.EdgeMsgs)/float64(res.Stats.Grants), "msgs/grant")
		})
	}
}

// BenchmarkBaselineComparison regenerates the §3.4 ¶1 comparison
// against the [LF81] arbiters, under both loads.
func BenchmarkBaselineComparison(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("roundrobin/light/n=%d", n), func(b *testing.B) {
			var st baseline.Stats
			var err error
			for i := 0; i < b.N; i++ {
				st, err = baseline.RoundRobin(n, 3, baseline.LightLoad(n, n-1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Max, "resp_b")
		})
		b.Run(fmt.Sprintf("roundrobin/heavy/n=%d", n), func(b *testing.B) {
			var st baseline.Stats
			var err error
			for i := 0; i < b.N; i++ {
				st, err = baseline.RoundRobin(n, 6*n, baseline.HeavyLoad(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Max, "resp_b")
		})
		b.Run(fmt.Sprintf("tournament/light/n=%d", n), func(b *testing.B) {
			var st baseline.Stats
			var err error
			for i := 0; i < b.N; i++ {
				st, err = baseline.Tournament(n, 3, baseline.LightLoad(n, n-1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Max, "resp_b")
		})
		b.Run(fmt.Sprintf("tournament/heavy/n=%d", n), func(b *testing.B) {
			var st baseline.Stats
			var err error
			for i := 0; i < b.N; i++ {
				st, err = baseline.Tournament(n, 6*n, baseline.HeavyLoad(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Max, "resp_b")
		})
	}
}

// BenchmarkFigure21Composition micro-benchmarks stepping the Figure
// 2.1 composition (the cost of synchronized composite steps).
func BenchmarkFigure21Composition(b *testing.B) {
	c := figures.Fig21()
	s := c.Start()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enabled := c.Enabled(s)
		next := c.Next(s, enabled[0])
		s = next[0]
	}
}

// BenchmarkRefinementCheck times the mechanical verification of the
// full h₂ possibilities mapping over the reachable states of A₃
// (Theorem 49's key link) on the Figure 3.2 instance.
func BenchmarkRefinementCheck(b *testing.B) {
	tr, err := graph.Figure32()
	if err != nil {
		b.Fatal(err)
	}
	aug, err := graph.Augment(tr)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := dist.New(tr, 0)
	if err != nil {
		b.Fatal(err)
	}
	h2m := mapping.NewH2Map(sys, aug)
	from, at, err := h2m.StartEdge()
	if err != nil {
		b.Fatal(err)
	}
	a2, err := graphlevel.New(aug, from, at)
	if err != nil {
		b.Fatal(err)
	}
	f2, err := sys.F2(aug)
	if err != nil {
		b.Fatal(err)
	}
	a3r, err := ioa.Rename(sys.A3, f2)
	if err != nil {
		b.Fatal(err)
	}
	h2 := h2m.H2(a3r, a2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h2.Verify(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReachabilityA3 times state-space exploration of the
// distributed arbiter (the substrate of every invariant check).
func BenchmarkReachabilityA3(b *testing.B) {
	tr, err := graph.Figure32()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := dist.New(tr, 0)
	if err != nil {
		b.Fatal(err)
	}
	var states []ioa.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		states, err = explore.New(explore.Options{Workers: 1, Limit: 1 << 20}).Reach(context.Background(), sys.A3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(states)), "states")
}

// BenchmarkDecomposition times the Theorem 23 construction plus a
// bounded behavior-equality check (the §2.2.3 ablation: what the
// primitive-decomposition machinery costs).
func BenchmarkDecomposition(b *testing.B) {
	a := figures.Fig23C()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, composed, err := proof.Decompose(a, a.States())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := explore.New(explore.Options{Workers: 1}).Behaviors(context.Background(), composed, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistVsGraph is the cross-level experiment: heavy-load
// response measured on the fully-distributed A₃ against the A₂-over-𝒢
// bound 3b·e(𝒢)−b (relating complexity across abstraction levels —
// flagged as future work in the paper's Chapter 4).
func BenchmarkDistVsGraph(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr, err := graph.BinaryTree(n)
			if err != nil {
				b.Fatal(err)
			}
			aug, err := graph.Augment(tr)
			if err != nil {
				b.Fatal(err)
			}
			holder := tr.NodesOf(graph.Arbiter)[0]
			var res *bench.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.RunDist(tr, holder, bench.Heavy, 1, 5*n, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			bound := 3*float64(aug.EdgeCount()) - 1
			if res.Stats.Max > bound {
				b.Fatalf("A3 max %.1f exceeds 3b·e(𝒢)−b = %.1f", res.Stats.Max, bound)
			}
			b.ReportMetric(res.Stats.Max, "resp_b")
			b.ReportMetric(bound, "bound_b")
		})
	}
}

// BenchmarkFairSimulation times the fair round-robin simulation of the
// closed three-level arbiter at level 3 (Figure 3.2 instance), the
// workhorse of the liveness tests.
func BenchmarkFairSimulation(b *testing.B) {
	tr, err := graph.Figure32()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := dist.New(tr, 0)
	if err != nil {
		b.Fatal(err)
	}
	users := make([]ioa.Automaton, 0, 3)
	for _, u := range tr.NodesOf(graph.User) {
		users = append(users, benchUser(tr.Node(u).Name, tr.Node(tr.UserAttachment(u)).Name))
	}
	closed, err := ioa.Compose("closed3", append([]ioa.Automaton{sys.A3}, users...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(closed, &sim.RoundRobin{}, 500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUser is a minimal always-requesting level-3 user.
func benchUser(user, arb string) *ioa.Prog {
	d := ioa.NewDef("U_" + user)
	d.Start(ioa.KeyState("idle"))
	d.Output(dist.ReceiveRequest(user, arb), user,
		func(s ioa.State) bool { return s.Key() == "idle" },
		func(ioa.State) ioa.State { return ioa.KeyState("waiting") })
	d.Input(dist.SendGrant(arb, user), func(s ioa.State) ioa.State {
		if s.Key() == "waiting" {
			return ioa.KeyState("holding")
		}
		return s
	})
	d.Output(dist.ReceiveGrant(user, arb), user,
		func(s ioa.State) bool { return s.Key() == "holding" },
		func(ioa.State) ioa.State { return ioa.KeyState("idle") })
	return d.MustBuild()
}
